/**
 * @file
 * schedule2: MiniC re-creation of the Siemens schedule2 benchmark
 * (paper Table 3: 374 LOC, 8 seeded bug versions; we seed 5).
 *
 * A round-robin scheduler with a job table and a circular ready
 * ring, driven by a command stream:
 *   1 p   add a job with priority p (1..3)
 *   2     tick: run the ring head for one quantum
 *   3     suspend the running job
 *   4     resume the oldest suspended job
 *   6     aging pass (promote long-waiting jobs)
 *   0     end
 *
 * Seeded bugs: 401/402 PE-detectable, 403 value-coverage-limited,
 * 404 special-input-only, 405 hot-entry-edge.
 */

#include "src/support/rng.hh"
#include "src/workloads/workloads.hh"

namespace pe::workloads
{

namespace
{

const char *source = R"MC(
// ---- schedule2 (Siemens-suite re-creation) ----

// Job table: state 0 = free, 1 = ready, 2 = running, 3 = suspended,
// 4 = done.
int state[24];
int prio[24];
int wait_time[24];

int ring[64];           // circular ready ring (job indices)
int head = 0;
int tail = 0;
int ring_count = 0;

int running = -1;       // job table index, -1 = none
int quantum = 0;
int total_ticks = 0;
int live_jobs = 0;
int suspended_count = 0;
int wraps = 0;
int alarm = 0;
int upgrades = 0;
int scan_misses = 0;
int done_count = 0;

int ring_push(int job) {
    if (ring_count >= 64) { return 0; }
    ring[tail] = job;
    tail = tail + 1;
    if (tail == 64) { tail = 0; }
    if (tail < head) {
        // Seeded bug 401: the recovery code for a wrapped ring relies
        // on the wrap counter, but the fault moved the counter update
        // after this check, so the first wrap sees wraps == 0.
        assert(wraps > 0, 401);
        wraps = wraps + 1;
    }
    ring_count = ring_count + 1;
    return 1;
}

int ring_pop() {
    int job = 0;
    if (ring_count == 0) { return -1; }
    job = ring[head];
    head = head + 1;
    if (head == 64) { head = 0; }
    ring_count = ring_count - 1;
    return job;
}

int alloc_job(int p) {
    int i = 0;
    while (i < 24) {
        if (state[i] == 0) {
            state[i] = 1;
            prio[i] = p;
            wait_time[i] = 0;
            live_jobs = live_jobs + 1;
            ring_push(i);
            return i;
        }
        scan_misses = scan_misses + 1;
        i = i + 1;
    }
    return -1;
}

int tick() {
    total_ticks = total_ticks + 1;
    // Seeded bug 403 (value coverage): tick 150 overflows the faulty
    // accounting table.
    assert(total_ticks != 150, 403);

    if (running == -1) {
        int job = ring_pop();
        if (job != -1) {
            state[job] = 2;
            running = job;
            quantum = 3;
        }
        return 0;
    }

    quantum = quantum - 1;
    int i = 0;
    while (i < 24) {
        if (state[i] == 1) {
            wait_time[i] = wait_time[i] + 1;
        }
        i = i + 1;
    }
    if (quantum == 0) {
        state[running] = 1;
        ring_push(running);
        running = -1;
    }
    return 1;
}

int suspend_running() {
    if (running != -1) {
        state[running] = 3;
        suspended_count = suspended_count + 1;
        running = -1;
        if (suspended_count > 9) {
            // Seeded bug 402: too many suspensions must raise the
            // alarm; the fault never sets it.
            assert(alarm == 1, 402);
            suspended_count = 9;
        }
    }
    return suspended_count;
}

int resume_one() {
    int i = 0;
    while (i < 24) {
        if (state[i] == 3) {
            state[i] = 1;
            suspended_count = suspended_count - 1;
            ring_push(i);
            return i;
        }
        i = i + 1;
    }
    return -1;
}

int aging_pass() {
    int i = 0;
    int promoted_any = 0;
    while (i < 24) {
        if (state[i] == 1) {
            if (wait_time[i] > 6) {
                if (prio[i] < 3) {
                    prio[i] = prio[i] + 1;
                    upgrades = upgrades + 1;
                    promoted_any = 1;
                }
                wait_time[i] = 0;
            }
        }
        i = i + 1;
    }
    if (upgrades > 4) {
        if (promoted_any == 1) {
            // Seeded bug 404 (special input): many upgrades in one
            // run, with a promotion in the final pass, hit the
            // faulty priority rebalance.  An NT-Path flips the outer
            // condition but promoted_any keeps its actual value.
            assert(upgrades < 6, 404);
        }
    }
    return upgrades;
}

// ---- audit mode (command 9; never issued benignly) ----

int audit_mode = 0;

int audit_table() {
    int anomalies = 0;
    int i = 0;
    while (i < 24) {
        if (state[i] == 1) {
            if (wait_time[i] > 10) {
                anomalies = anomalies + 1;
            }
        } else if (state[i] == 2) {
            if (i != running) {
                anomalies = anomalies + 2;
            }
        } else if (state[i] == 3) {
            if (prio[i] == 3) {
                anomalies = anomalies + 1;
            }
        }
        i = i + 2;      // sampled audit
    }
    if (anomalies > 6) {
        anomalies = 6;
    }
    return anomalies;
}

int audit_ring() {
    int live = 0;
    int idx = head;
    int seen = 0;
    while (seen < ring_count && seen < 8) {
        if (state[ring[idx]] == 1) {
            live = live + 1;
        }
        idx = idx + 1;
        if (idx == 64) { idx = 0; }
        seen = seen + 1;
    }
    return live;
}

// Recovery: compact the job table, dropping stale slots.  Reachable
// only with the audit armed twice and 16+ reaped jobs.
int compact_table() {
    int cleaned = 0;
    int i = 0;
    while (i < 24) {
        if (state[i] == 0) {
            if (prio[i] != 0) {
                prio[i] = 0;
                cleaned = cleaned + 1;
            }
            if (wait_time[i] != 0) {
                wait_time[i] = 0;
                cleaned = cleaned + 1;
            }
        } else if (state[i] == 1) {
            if (wait_time[i] > 20) {
                wait_time[i] = 20;      // clamp runaway waits
                cleaned = cleaned + 1;
            }
        } else if (state[i] == 4) {
            if (running == i) {
                running = -1;           // done job can't be running
                cleaned = cleaned + 1;
            }
        }
        i = i + 1;
    }
    if (suspended_count < 0) {
        suspended_count = 0;
    }
    if (cleaned > 8) {
        cleaned = 8;
    }
    return cleaned;
}

int deep_audit2() {
    int v = 0;
    // Nested rare conditions: beyond a single NT-Path flip.
    if (audit_mode > 1) {
        if (done_count > 15) {
            int i = 0;
            while (i < 24) {
                if (state[i] == 0 && prio[i] != 0) {
                    v = v + 1;
                }
                i = i + 1;
            }
            v = v + compact_table();
        }
    }
    return v;
}

int reap_done() {
    int reaped = 0;
    int i = 0;
    while (i < 24) {
        if (state[i] == 4) {
            state[i] = 0;
            live_jobs = live_jobs - 1;
            done_count = done_count + 1;
            reaped = reaped + 1;
        }
        i = i + 1;
    }
    if (reaped > 2) {
        // Seeded bug 405 (hot entry edge): bulk reaping mishandles a
        // nearly-full job table.  The edge is exercised early with a
        // small table, saturating the exercise counter before the
        // table ever fills up.
        assert(live_jobs < 12, 405);
    }
    return reaped;
}

int finish_running() {
    if (running != -1) {
        state[running] = 4;
        running = -1;
    }
    return 0;
}

int main() {
    int cmd = read_int();
    while (cmd != 0 && cmd != -1) {
        if (cmd == 1) {
            int p = read_int();
            if (p < 1) { p = 1; }
            if (p > 3) { p = 3; }
            alloc_job(p);
        } else if (cmd == 2) {
            tick();
        } else if (cmd == 3) {
            suspend_running();
        } else if (cmd == 4) {
            resume_one();
        } else if (cmd == 5) {
            finish_running();
        } else if (cmd == 6) {
            aging_pass();
        } else if (cmd == 7) {
            reap_done();
        } else if (cmd == 9) {
            audit_mode = audit_mode + 1;
        }
        if (audit_mode > 0) {
            audit_table();
            audit_ring();
        }
        if (audit_mode > 1) {
            deep_audit2();
        }
        cmd = read_int();
    }
    print_str("ticks=");
    print_int(total_ticks);
    print_char(10);
    print_str("live=");
    print_int(live_jobs);
    print_char(10);
    print_str("done=");
    print_int(done_count);
    print_char(10);
    print_str("upgrades=");
    print_int(upgrades);
    print_char(10);
    return 0;
}
)MC";

/**
 * Benign streams: the ring never wraps with a smaller tail (jobs
 * drain fast), at most 9 suspensions, fewer than 150 ticks, at most
 * 4 upgrades, and bulk reaps (>2 at once) only while the table is
 * small — then the table grows while reaps stay small.
 */
std::vector<int32_t>
benignStream(Rng &rng)
{
    std::vector<int32_t> in;
    auto add = [&in](int p) {
        in.push_back(1);
        in.push_back(p);
    };
    auto cmds = [&in](int c, int n) {
        for (int i = 0; i < n; ++i)
            in.push_back(c);
    };

    // Phase 1: small batches finish together and get bulk-reaped
    // (reaped 3..4 with a small table); extra empty reaps exercise
    // the false edge of the 405 branch so its counter saturates.
    int batches = static_cast<int>(rng.nextRange(2, 3));
    for (int b = 0; b < batches; ++b) {
        int k = static_cast<int>(rng.nextRange(3, 4));
        for (int i = 0; i < k; ++i)
            add(static_cast<int>(rng.nextRange(1, 3)));
        for (int i = 0; i < k; ++i) {
            in.push_back(2);    // dispatch
            in.push_back(5);    // finish
        }
        in.push_back(7);        // bulk reap (reaped == k > 2)
        cmds(7, 2);             // empty reaps (false outcomes)
        cmds(2, 2);
    }

    // Phase 2: the table fills up (live_jobs >= 12) but jobs finish
    // one at a time, so every reap is small.  Busy runs stay short so
    // no job waits past the aging threshold.
    int grow = static_cast<int>(rng.nextRange(13, 15));
    for (int i = 0; i < grow; ++i)
        add(static_cast<int>(rng.nextRange(1, 3)));
    cmds(2, static_cast<int>(rng.nextRange(3, 6)));
    for (int i = 0; i < 3; ++i) {
        in.push_back(2);
        in.push_back(5);        // finish one
        in.push_back(7);        // reap one (reaped == 1)
    }
    // A couple of suspension cycles (suspended_count stays <= 2, but
    // the overflow branch is exercised so PathExpander can explore
    // its cold edge).
    int cycles = static_cast<int>(rng.nextRange(1, 2));
    for (int i = 0; i < cycles; ++i) {
        in.push_back(2);        // ensure something is running
        in.push_back(3);        // suspend it
        in.push_back(2);
        in.push_back(4);        // resume
    }
    cmds(6, static_cast<int>(rng.nextRange(1, 2)));
    in.push_back(0);
    return in;
}

} // namespace

Workload
makeSchedule2()
{
    Workload w;
    w.name = "schedule2";
    w.description =
        "Siemens schedule2 re-creation (round-robin scheduler)";
    w.tools = "assert";
    w.paperLoc = 374;
    w.maxNtPathLength = 200;
    w.source = source;

    Rng rng(0xbadc0de4);
    for (int i = 0; i < 50; ++i)
        w.benignInputs.push_back(benignStream(rng));

    auto assertBug = [&w](int id, bool detect, const std::string &cat,
                          const std::string &desc) {
        BugSpec b;
        b.id = "sched2-a" + std::to_string(id);
        b.kind = BugSpec::Kind::Assertion;
        b.assertId = id;
        b.expectPeDetect = detect;
        b.missCategory = cat;
        b.description = desc;
        w.bugs.push_back(b);
    };
    assertBug(401, true, "", "ring wrap accounting dropped");
    assertBug(402, true, "", "suspension alarm never raised");
    assertBug(403, false, "value-coverage", "fires on tick 150");
    assertBug(404, false, "special-input",
              "nested cold condition in the aging pass");
    assertBug(405, false, "hot-entry-edge",
              "bulk reap with a nearly-full table; entry edge "
              "saturates early");

    // Triggers.
    {
        // 401: requeue traffic pushes the tail around the 64-entry
        // ring; the first wrap sees wraps == 0 and fires.
        std::vector<int32_t> in;
        for (int i = 0; i < 10; ++i) {
            in.push_back(1);
            in.push_back(2);
        }
        for (int i = 0; i < 230; ++i)
            in.push_back(2);    // ~1 requeue push per 4 ticks
        in.push_back(0);
        w.triggerInputs["sched2-a401"] = in;
    }
    {
        // 402: suspend 10 jobs.
        std::vector<int32_t> in;
        for (int i = 0; i < 10; ++i) {
            in.push_back(1);
            in.push_back(2);
            in.push_back(2);
            in.push_back(3);
        }
        in.push_back(0);
        w.triggerInputs["sched2-a402"] = in;
    }
    {
        // 403: 150 ticks.
        std::vector<int32_t> in;
        for (int i = 0; i < 150; ++i)
            in.push_back(2);
        in.push_back(0);
        w.triggerInputs["sched2-a403"] = in;
    }
    {
        // 404: eight waiting prio-1 jobs age past the threshold and
        // get promoted in one pass (upgrades >= 6).
        std::vector<int32_t> in;
        for (int j = 0; j < 8; ++j) {
            in.push_back(1);
            in.push_back(1);
        }
        for (int t = 0; t < 14; ++t)
            in.push_back(2);        // wait_time grows past 6
        in.push_back(6);            // aging pass
        in.push_back(0);
        w.triggerInputs["sched2-a404"] = in;
    }
    {
        // 405: fill the table to 16 live jobs, finish 3, bulk reap
        // (live_jobs is 13 >= 12 when the faulty path fires).
        std::vector<int32_t> in;
        for (int i = 0; i < 16; ++i) {
            in.push_back(1);
            in.push_back(2);
        }
        for (int i = 0; i < 3; ++i) {
            in.push_back(2);
            in.push_back(5);
        }
        in.push_back(7);
        in.push_back(0);
        w.triggerInputs["sched2-a405"] = in;
    }

    return w;
}

} // namespace pe::workloads
