/**
 * @file
 * print_tokens2: MiniC re-creation of the Siemens print_tokens2
 * benchmark (paper Table 3: 570 LOC, 10 seeded bug versions).
 *
 * The program tokenizes a character stream and prints a classified
 * summary.  Seeded bugs:
 *
 *  - v10 (memory, the paper's Figure 1): classify_quoted() scans for
 *    the closing quote of a quoted token with `while (tok[i] != '"')`
 *    and no bounds check; a quote-initial token without a second
 *    quote overruns the token buffer.  Benign inputs never start a
 *    token with '"', so only an NT-Path reaches the scan.
 *  - 201/202/208/209 (assertions, PE-detectable): invariant checks on
 *    cold branches that the seeded faults violate whenever the branch
 *    body runs.
 *  - 203 (assertion, inconsistency-masked, the paper's v3): the
 *    invariant involves pending_data, which is correlated with the
 *    branch condition but not fixed by PathExpander, so the NT-Path
 *    state masks the violation.
 *  - 204/205 (assertions, value-coverage-limited): sit on the hot
 *    taken path and only fire for special input values.
 *  - 206/207 (assertions, special-input-only, the paper's v6): behind
 *    two nested cold conditions; the NT-Path flips the outer branch
 *    but follows the actual (false) inner outcome.
 */

#include "src/support/rng.hh"
#include "src/workloads/workloads.hh"

namespace pe::workloads
{

namespace
{

const char *source = R"MC(
// ---- print_tokens2 (Siemens-suite re-creation) ----

int tok[10];
int tok_len = 0;

int line_num = 1;
int num_tokens = 0;
int num_keywords = 0;
int num_numbers = 0;
int num_idents = 0;
int num_specials = 0;
int num_strings = 0;
int num_comments = 0;
int error_count = 0;
int paren_depth = 0;
int state = 1;
int pending = 0;
int pending_data = 0;
int last_kind = 0;

int is_space(int c) {
    if (c == 32) { return 1; }
    if (c == 10) { return 1; }
    if (c == 9) { return 1; }
    return 0;
}

int is_digit(int c) {
    if (c >= '0') {
        if (c <= '9') { return 1; }
    }
    return 0;
}

int is_alpha(int c) {
    if (c >= 'a') {
        if (c <= 'z') { return 1; }
    }
    if (c >= 'A') {
        if (c <= 'Z') { return 1; }
    }
    return 0;
}

// Read one whitespace-separated token into tok[]; 0 at end of input.
int read_token() {
    int c = read_char();
    while (c != -1 && is_space(c)) {
        if (c == 10) {
            line_num = line_num + 1;
        }
        c = read_char();
    }
    if (c == -1) { return 0; }
    tok_len = 0;
    while (c != -1 && !is_space(c)) {
        if (tok_len < 9) {
            tok[tok_len] = c;
            tok_len = tok_len + 1;
        }
        c = read_char();
    }
    tok[tok_len] = 0;
    return 1;
}

int str_eq(int *a, int *b) {
    int i = 0;
    while (a[i] != 0 && b[i] != 0) {
        if (a[i] != b[i]) { return 0; }
        i = i + 1;
    }
    if (a[i] == b[i]) { return 1; }
    return 0;
}

int is_keyword() {
    if (str_eq(tok, "if")) { return 1; }
    if (str_eq(tok, "else")) { return 1; }
    if (str_eq(tok, "while")) { return 1; }
    if (str_eq(tok, "return")) { return 1; }
    if (str_eq(tok, "begin")) { return 1; }
    if (str_eq(tok, "end")) { return 1; }
    return 0;
}

int is_number() {
    int i = 0;
    while (i < tok_len) {
        if (!is_digit(tok[i])) { return 0; }
        i = i + 1;
    }
    if (tok_len > 0) { return 1; }
    return 0;
}

// Figure 1 / seeded bug v10: scans for the closing quote without a
// bounds check; a quoted token missing its second quote runs off the
// end of tok[] into the guard zone.
int classify_quoted() {
    int i = 1;
    while (tok[i] != '"') {
        i = i + 1;
    }
    return i - 1;
}

int classify_special() {
    int c = tok[0];
    if (c == '(') {
        paren_depth = paren_depth + 1;
    }
    if (c == ')') {
        paren_depth = paren_depth - 1;
        if (paren_depth < 0) {
            error_count = error_count + 1;
            paren_depth = 0;
        }
    }
    if (paren_depth > 6) {
        // Seeded bug 202: handler should reset the depth but only
        // decrements it; the assertion checks the postcondition.
        paren_depth = paren_depth - 1;
        assert(paren_depth == 0, 202);
    }
    return 4;
}

int process_token() {
    int kind = 0;
    num_tokens = num_tokens + 1;
    // Seeded bug 204 (value coverage): the 100th token is mishandled
    // by the original fault; only inputs with >= 100 tokens expose it.
    assert(num_tokens != 100, 204);
    // Seeded bug 205 (value coverage): 9-character tokens are
    // truncated incorrectly by the fault.
    assert(tok_len != 9, 205);

    if (tok[0] == '"') {
        num_strings = num_strings + 1;
        kind = 5;
        classify_quoted();
    } else if (is_keyword()) {
        num_keywords = num_keywords + 1;
        kind = 1;
    } else if (is_number()) {
        num_numbers = num_numbers + 1;
        kind = 2;
    } else if (is_alpha(tok[0])) {
        num_idents = num_idents + 1;
        kind = 3;
    } else {
        kind = classify_special();
        num_specials = num_specials + 1;
    }

    if (tok[0] == '#') {
        num_comments = num_comments + 1;
        if (tok_len > 6) {
            // Seeded bug 206 (special input): long #-tokens must be
            // shebang lines; the fault drops the '!' check.
            assert(tok[1] == '!', 206);
        }
    }

    if (kind == 4 && last_kind == 4) {
        state = state + 1;
        if (state > 5) {
            // Seeded bug 201: runs of special tokens push the state
            // machine into a dead state; the fault forgets to record
            // an error first.
            assert(error_count > 0, 201);
            state = 1;
        }
    } else {
        state = 1;
    }

    if (pending == 1) {
        // Seeded bug 203 (inconsistency-masked, the paper's v3): a
        // real run with pending == 1 also carries pending_data != 0,
        // and the seeded fault mishandles exactly that; on an NT-Path
        // pending is fixed to 1 but pending_data keeps its benign 0,
        // masking the violation.
        assert(pending_data == 0, 203);
        pending = 0;
    }

    if (tok[0] == '%') {
        pending = 1;
        pending_data = tok_len;
        if (tok_len > 7) {
            // Seeded bug 207 (special input): nested cold condition.
            assert(tok[1] == '%', 207);
        }
    }

    if (tok[0] == '&') {
        lint_mode = lint_mode + 1;
    }
    if (tok[0] == '$') {
        abbrev_tab = malloc(12);
        locale_tab = malloc(8);
        dialect_marker = num_tokens + 2;
    }
    note_dialect(kind);
    if (lint_mode > 0) {
        lint_token(kind);
    }
    if (lint_mode > 1) {
        deep_lint();
    }

    last_kind = kind;
    return kind;
}

// ---- lint mode (enabled by a "&lint" token; never benign) ----

int lint_mode = 0;
int style_warnings = 0;

// ---- dialect support (enabled by a "$dialect" token; never
// ---- benign).  The tables are the classic source of NT-Path
// ---- null-dereference false positives before consistency fixing.

int *abbrev_tab = 0;
int *locale_tab = 0;
int dialect_marker = -1;
int dialect_notes[10];

int note_dialect(int kind) {
    if (abbrev_tab != 0) {
        int k = tok[0] % 12;
        if (k < 0) { k = 0; }
        abbrev_tab[k] = abbrev_tab[k] + 1;
        if (abbrev_tab[0] > 50) {
            abbrev_tab[0] = 0;
        }
    }
    if (locale_tab != 0) {
        int slot = kind % 8;
        if (slot < 0) { slot = 0; }
        if (locale_tab[slot] == tok[0]) {
            style_warnings = style_warnings + 1;
        }
        locale_tab[slot] = tok[0];
    }
    // dialect_marker is -1 unless armed; variable-vs-variable, so no
    // consistency fix applies (a residual after-fix false positive).
    if (dialect_marker == num_tokens) {
        dialect_notes[dialect_marker % 10] = kind;
    }
    return kind;
}

int lint_token(int kind) {
    int w = 0;
    if (tok_len > 6) {
        w = w + 1;
        if (kind == 3) {
            w = w + 1;
        }
    }
    if (kind == 2) {
        if (tok[0] == '0' && tok_len > 1) {
            w = w + 2;      // leading zero
        }
    } else if (kind == 1) {
        if (num_keywords > 10) {
            w = w + 1;
        }
    } else if (kind == 4) {
        if (paren_depth > 3) {
            w = w + 1;
        }
        if (last_kind == 4) {
            w = w + 1;
        }
    }
    if (line_num > 40 && w > 0) {
        w = w + 1;
    }
    style_warnings = style_warnings + w;
    return w;
}

// Style report: summarize warnings by token class.  Reachable only
// with lint mode armed twice and nine-plus accumulated warnings.
int style_report() {
    int grade = 0;
    if (style_warnings > 20) {
        grade = 4;
    } else if (style_warnings > 14) {
        grade = 3;
        if (num_specials > num_idents) {
            grade = 4;
        }
    } else {
        grade = 2;
        if (num_keywords == 0) {
            grade = 3;
        } else if (num_numbers > num_keywords * 3) {
            grade = 3;
        }
    }
    if (paren_depth != 0) {
        grade = grade + 1;
    }
    if (error_count > 0 && grade > 2) {
        grade = grade + 1;
    }
    return grade;
}

int deep_lint() {
    int v = 0;
    // Nested rare conditions: beyond a single NT-Path flip.
    if (lint_mode > 1) {
        if (style_warnings > 8) {
            int i = 0;
            while (i < tok_len) {
                if (tok[i] == tok[0]) {
                    v = v + 1;
                }
                i = i + 1;
            }
            v = v + style_report();
        }
    }
    return v;
}

int print_summary() {
    print_str("tokens=");
    print_int(num_tokens);
    print_char(10);
    print_str("keywords=");
    print_int(num_keywords);
    print_char(10);
    print_str("numbers=");
    print_int(num_numbers);
    print_char(10);
    print_str("idents=");
    print_int(num_idents);
    print_char(10);
    print_str("specials=");
    print_int(num_specials);
    print_char(10);
    print_str("strings=");
    print_int(num_strings);
    print_char(10);
    print_str("comments=");
    print_int(num_comments);
    print_char(10);
    if (error_count > 0) {
        // Seeded bug 208: the refactored error path should have
        // excluded specials from the summary accounting.
        assert(num_specials == 0, 208);
        print_str("errors=");
        print_int(error_count);
        print_char(10);
    }
    if (num_strings > 0 && num_comments > 0) {
        // Seeded bug 209: mixing strings and comments trips the
        // faulty bookkeeping of last_kind.
        assert(last_kind == 5, 209);
    }
    return 0;
}

int main() {
    while (read_token()) {
        process_token();
    }
    print_summary();
    return 0;
}
)MC";

/** Encode a text string as an input word stream. */
std::vector<int32_t>
chars(const std::string &text)
{
    std::vector<int32_t> out;
    for (char c : text)
        out.push_back(static_cast<unsigned char>(c));
    return out;
}

/**
 * Random benign token stream.  Deliberately avoids every trigger
 * pattern: no quote-initial tokens, no '#'/'%' tokens, tokens shorter
 * than 9 characters, fewer than 100 tokens, at most three consecutive
 * special tokens, and parentheses only as balanced shallow pairs.
 */
std::vector<int32_t>
benignStream(Rng &rng)
{
    static const char *plain[] = {
        "if", "else", "while", "return", "begin", "end",
        "alpha", "beta", "gamma", "delta", "count", "sum",
        "12", "345", "7", "900",
    };
    static const char *specials[] = {"+", "-", ";", "="};
    constexpr size_t numPlain = 16;
    constexpr size_t numSpecials = 4;

    std::string text;
    int n = static_cast<int>(rng.nextRange(8, 60));
    int consecutive_specials = 0;
    for (int i = 0; i < n; ++i) {
        double roll = rng.nextDouble();
        if (roll < 0.1) {
            text += "( ";
            text += plain[rng.nextBelow(numPlain)];
            text += " )";
            consecutive_specials = 1;   // the trailing ')'
        } else if (roll < 0.4 && consecutive_specials < 3) {
            text += specials[rng.nextBelow(numSpecials)];
            ++consecutive_specials;
        } else {
            text += plain[rng.nextBelow(numPlain)];
            consecutive_specials = 0;
        }
        text += rng.nextBool(0.2) ? "\n" : " ";
    }
    return chars(text);
}

} // namespace

Workload
makePrintTokens2()
{
    Workload w;
    w.name = "print_tokens2";
    w.description = "Siemens print_tokens2 re-creation (tokenizer)";
    w.tools = "assert";
    w.paperLoc = 570;
    w.maxNtPathLength = 200;

    w.source = source;

    Rng rng(0xbadc0de2);
    for (int i = 0; i < 50; ++i)
        w.benignInputs.push_back(benignStream(rng));

    // Bugs.  The v10 memory bug sits in classify_quoted.
    {
        BugSpec b;
        b.id = "pt2-v10";
        b.kind = BugSpec::Kind::Memory;
        b.funcName = "classify_quoted";
        b.expectPeDetect = true;
        b.description = "Figure 1: unterminated quote scan overruns "
                        "tok[] (buffer overrun)";
        w.bugs.push_back(b);
        w.triggerInputs["pt2-v10"] = chars("begin \"unterminated end");
    }
    auto assertBug = [&w](int id, bool detect, const std::string &cat,
                          const std::string &desc) {
        BugSpec b;
        b.id = "pt2-a" + std::to_string(id);
        b.kind = BugSpec::Kind::Assertion;
        b.assertId = id;
        b.expectPeDetect = detect;
        b.missCategory = cat;
        b.description = desc;
        w.bugs.push_back(b);
    };
    assertBug(201, true, "", "dead state entered without an error");
    assertBug(202, true, "", "paren-depth overflow mishandled");
    assertBug(208, true, "", "error path leaves state machine dirty");
    assertBug(209, true, "", "string/comment bookkeeping fault");
    assertBug(203, false, "inconsistency",
              "pending_data correlated with the fixed variable");
    assertBug(204, false, "value-coverage", "fires on the 100th token");
    assertBug(205, false, "value-coverage",
              "fires on 9-character tokens");
    assertBug(206, false, "special-input",
              "nested cold branch (long # token)");
    assertBug(207, false, "special-input",
              "nested cold branch (long % token)");

    // Trigger inputs proving the bugs are real on the taken path.
    w.triggerInputs["pt2-a201"] = chars("+ + + + + + + + + + +");
    w.triggerInputs["pt2-a202"] = chars("( ( ( ( ( ( ( ( x");
    {
        std::string text;
        for (int i = 0; i < 105; ++i)
            text += "tok ";
        w.triggerInputs["pt2-a204"] = chars(text);
    }
    w.triggerInputs["pt2-a205"] = chars("verylongid x");
    w.triggerInputs["pt2-a206"] = chars("#cmnt567 x");
    w.triggerInputs["pt2-a207"] = chars("%pendin8 x");
    w.triggerInputs["pt2-a203"] = chars("%abc follow");
    w.triggerInputs["pt2-a208"] = chars(") x");
    w.triggerInputs["pt2-a209"] = chars("\"s\" #c plus");

    return w;
}

} // namespace pe::workloads
