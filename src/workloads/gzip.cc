/**
 * @file
 * pe_gzip: MiniC stand-in for SPEC2000 164.gzip (Figure 3(b),
 * coverage and overhead experiments; no seeded bugs).
 *
 * An LZ77-style compressor: a sliding-window longest-match search
 * over the input, emitting literals and (length, distance) pairs.
 * Output happens throughout the main loop, so NT-Paths frequently
 * reach an I/O system call — reproducing the paper's observation
 * that "for many applications, such as gzip and vpr, the majority of
 * NT-Paths stop early due to unsafe events".
 */

#include "src/support/rng.hh"
#include "src/workloads/workloads.hh"

namespace pe::workloads
{

namespace
{

const char *source = R"MC(
// ---- pe_gzip (164.gzip stand-in) ----

int inbuf[600];
int in_len = 0;

int hash_head[64];

int outbuf[96];         // pending output tokens
int out_len = 0;

int literals = 0;
int matches = 0;
int total_match_len = 0;
int out_tokens = 0;
int checksum = 0;
int level = 6;          // compression effort 1..9
int min_match = 3;
int max_chain = 16;
int stats_mode = 0;     // optional statistics pass ('S' prefix)

int read_input() {
    int c = read_char();
    while (c != -1 && in_len < 600) {
        inbuf[in_len] = c;
        in_len = in_len + 1;
        c = read_char();
    }
    return in_len;
}

int hash3(int pos) {
    int h = inbuf[pos] * 5;
    if (pos + 1 < in_len) { h = h + inbuf[pos + 1] * 3; }
    if (pos + 2 < in_len) { h = h + inbuf[pos + 2]; }
    h = h % 64;
    if (h < 0) { h = 0 - h; }
    return h;
}

int match_len(int a, int b) {
    int n = 0;
    while (b + n < in_len && n < 32) {
        if (inbuf[a + n] != inbuf[b + n]) {
            return n;
        }
        n = n + 1;
    }
    return n;
}

// Scan backwards for the longest match within the window.
int find_match(int pos, int *best_dist) {
    int best = 0;
    int chain = max_chain;
    int cand = pos - 1;
    int window = 128;
    if (level > 7) { window = 256; }
    while (cand >= 0 && pos - cand <= window && chain > 0) {
        if (inbuf[cand] == inbuf[pos]) {
            int len = match_len(cand, pos);
            if (len > best) {
                best = len;
                *best_dist = pos - cand;
            }
            chain = chain - 1;
        }
        cand = cand - 1;
    }
    return best;
}

// Output is buffered like the real gzip: tokens accumulate in outbuf
// and are flushed to the output stream only when the buffer fills.
int flush_out() {
    int i = 0;
    while (i < out_len) {
        if (outbuf[i] < 0) {
            print_char('M');
            print_int(0 - outbuf[i]);
        } else {
            print_char('L');
            print_int(outbuf[i]);
        }
        i = i + 1;
    }
    out_len = 0;
    return i;
}

int emit_token(int token) {
    if (out_len >= 90) {
        flush_out();
    }
    outbuf[out_len] = token;
    out_len = out_len + 1;
    out_tokens = out_tokens + 1;
    return out_len;
}

int emit_literal(int c) {
    emit_token(c);
    literals = literals + 1;
    checksum = checksum + c;
    return 1;
}

int emit_match(int len, int dist) {
    emit_token(0 - (len * 512 + dist));
    matches = matches + 1;
    total_match_len = total_match_len + len;
    checksum = checksum + len * 7 + dist;
    return len;
}

// ---- optional statistics pass (never enabled benignly) ----

int stat_ratio() {
    // Average input bytes covered per match: a real statistics pass
    // runs once matches exist; an NT-Path arriving before the first
    // match divides by zero and crashes (a Figure-3 crash site).
    return in_len * 100 / total_match_len;
}

int stat_histogram() {
    int buckets[8];
    int i = 0;
    while (i < 8) {
        buckets[i] = 0;
        i = i + 1;
    }
    i = 0;
    while (i < out_len) {
        int b = outbuf[i] % 8;
        if (b < 0) { b = 0 - b; }
        buckets[b] = buckets[b] + 1;
        i = i + 1;
    }
    int best = 0;
    i = 1;
    while (i < 8) {
        if (buckets[i] > buckets[best]) {
            best = i;
        }
        i = i + 1;
    }
    return best;
}

// Retune the hash chains from scratch; reachable only at the deepest
// statistics level with an already-large output.
int retune_tables() {
    int rebuilt = 0;
    int i = 0;
    while (i < 64) {
        hash_head[i] = 0 - 1;
        i = i + 1;
    }
    i = 0;
    while (i + 2 < in_len && i < 256) {
        int h = hash3(i);
        if (hash_head[h] < 0) {
            hash_head[h] = i;
            rebuilt = rebuilt + 1;
        } else if (i - hash_head[h] > 128) {
            hash_head[h] = i;       // refresh stale heads
        }
        i = i + 1;
    }
    if (rebuilt < 8 && level > 5) {
        max_chain = max_chain / 2;  // sparse input: shorter chains
        if (max_chain < 4) {
            max_chain = 4;
        }
    }
    return rebuilt;
}

int stats_pass() {
    int v = 0;
    if (stats_mode > 0) {
        v = v + stat_histogram();
    }
    if (stats_mode > 1) {
        v = v + stat_ratio();
    }
    if (stats_mode > 2) {
        if (out_tokens > 200) {
            v = v + retune_tables();
        }
    }
    return v;
}

int deflate() {
    int pos = 0;
    while (pos < in_len) {
        int dist = 0;
        int len = find_match(pos, &dist);
        int lazy = 0;
        if (len >= min_match && level > 3 && pos + 1 < in_len) {
            // Lazy matching: peek whether the next position is
            // better (exercised only at higher levels).
            int d2 = 0;
            int l2 = find_match(pos + 1, &d2);
            if (l2 > len + 1) {
                lazy = 1;
            }
        }
        if (len >= min_match && lazy == 0) {
            emit_match(len, dist);
            int h = hash3(pos);
            hash_head[h] = pos;
            pos = pos + len;
        } else {
            emit_literal(inbuf[pos]);
            int h = hash3(pos);
            hash_head[h] = pos;
            pos = pos + 1;
        }
        stats_pass();
    }
    return out_tokens;
}

int main() {
    int mode = read_char();
    if (mode >= '1' && mode <= '9') {
        level = mode - '0';
    }
    if (mode == 'S') {
        stats_mode = 2;
    }
    if (level > 8) {
        max_chain = 64;
    }
    read_input();
    deflate();
    flush_out();
    print_char(10);
    print_str("lit=");
    print_int(literals);
    print_char(10);
    print_str("match=");
    print_int(matches);
    print_char(10);
    print_str("sum=");
    print_int(checksum);
    print_char(10);
    return 0;
}
)MC";

/** Compressible text: repeated phrases with noise, level prefix. */
std::vector<int32_t>
benignData(Rng &rng)
{
    static const char *phrases[] = {
        "the quick brown fox ", "pack my box with ", "jumped over ",
        "compression ratio ", "sliding window ",
    };
    std::vector<int32_t> in;
    in.push_back('0' + static_cast<int32_t>(rng.nextRange(4, 7)));
    int n = static_cast<int>(rng.nextRange(12, 25));
    for (int i = 0; i < n; ++i) {
        const char *p = phrases[rng.nextBelow(5)];
        for (const char *q = p; *q; ++q)
            in.push_back(static_cast<unsigned char>(*q));
        if (rng.nextBool(0.3))
            in.push_back(static_cast<int32_t>(rng.nextRange('a', 'z')));
    }
    return in;
}

} // namespace

Workload
makeGzip()
{
    Workload w;
    w.name = "pe_gzip";
    w.description = "SPEC2000 164.gzip stand-in (LZ77 compressor)";
    w.tools = "none";
    w.paperLoc = 8605;
    w.maxNtPathLength = 1000;
    w.source = source;

    Rng rng(0xbadc0de8);
    for (int i = 0; i < 50; ++i)
        w.benignInputs.push_back(benignData(rng));

    return w;
}

} // namespace pe::workloads
