/**
 * @file
 * Workload registry.
 */

#include <memory>
#include <unordered_map>

#include "src/support/status.hh"
#include "src/workloads/workload.hh"
#include "src/workloads/workloads.hh"

namespace pe::workloads
{

namespace
{

using Factory = Workload (*)();

struct RegistryEntry
{
    Factory factory;
    bool buggy;     //!< one of the seven Table-3 applications
};

const std::vector<std::pair<std::string, RegistryEntry>> &
registryList()
{
    static const std::vector<std::pair<std::string, RegistryEntry>>
        list = {
            {"pe_go", {makeGo, true}},
            {"pe_bc", {makeBc, true}},
            {"pe_man", {makeMan, true}},
            {"print_tokens", {makePrintTokens, true}},
            {"print_tokens2", {makePrintTokens2, true}},
            {"schedule", {makeSchedule, true}},
            {"schedule2", {makeSchedule2, true}},
            {"pe_gzip", {makeGzip, false}},
            {"pe_vpr", {makeVpr, false}},
            {"pe_parser", {makeParser, false}},
        };
    return list;
}

} // namespace

const Workload &
getWorkload(const std::string &name)
{
    static std::unordered_map<std::string, std::unique_ptr<Workload>>
        cache;
    auto it = cache.find(name);
    if (it != cache.end())
        return *it->second;
    for (const auto &[n, entry] : registryList()) {
        if (n == name) {
            auto made = std::make_unique<Workload>(entry.factory());
            pe_assert(made->name == name,
                      "workload name mismatch: ", name);
            return *cache.emplace(name, std::move(made)).first->second;
        }
    }
    pe_fatal("unknown workload '", name, "'");
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> out;
    for (const auto &[n, entry] : registryList())
        out.push_back(n);
    return out;
}

std::vector<std::string>
buggyWorkloadNames()
{
    std::vector<std::string> out;
    for (const auto &[n, entry] : registryList()) {
        if (entry.buggy)
            out.push_back(n);
    }
    return out;
}

std::vector<std::string>
specWorkloadNames()
{
    std::vector<std::string> out;
    for (const auto &[n, entry] : registryList()) {
        if (!entry.buggy)
            out.push_back(n);
    }
    return out;
}

} // namespace pe::workloads
