/**
 * @file
 * pe_go: MiniC stand-in for SPEC95 099.go (paper Table 3: 29,623 LOC,
 * 2 memory bugs; also one of the three Figure-3 applications).
 *
 * A 9x9 board-game move evaluator: stones are placed from the input
 * move list, simple captures are resolved, and influence/liberty maps
 * are recomputed after every move.  Like the original, it is
 * compute-only until the final score dump, so NT-Paths almost never
 * hit unsafe events — the paper's Figure 3(a) shows only 0.5% of
 * go's NT-Paths stopping before 1000 instructions.
 *
 * Seeded memory bugs:
 *  - go-m1 (PE-detectable): score_edges() walks one past the edge
 *    accumulation row (classic `<=` off-by-one) into the guard zone;
 *    reachable only through the cold edge_focus branch.
 *  - go-m2 (special-input-only): the late-game capture-log flush
 *    overruns capture_log, but it hides behind two nested conditions
 *    (phase == 2 AND captures > 10); an NT-Path flips the outer
 *    branch and then follows the actual inner outcome, so only a
 *    special input reaches it (paper Section 7.1, category 4).
 *
 * The optional pattern/joseki table pointers (null unless a directive
 * move enables them) are the source of the null-dereference false
 * positives that Section 4.4's blank-structure fix prunes (Table 5).
 */

#include "src/support/rng.hh"
#include "src/workloads/workloads.hh"

namespace pe::workloads
{

namespace
{

const char *source = R"MC(
// ---- pe_go (099.go stand-in) ----

int board[81];          // 0 empty, 1 black, 2 white
int influence[81];
int liberties[81];
int edge_row[9];
int capture_log[12];

int move_count = 0;
int captures = 0;
int black_score = 0;
int white_score = 0;
int phase = 1;
int edge_focus = 0;
int corner_plays = 0;

int *pattern_tab = 0;   // optional pattern table (directive-enabled)
int *joseki_tab = 0;    // optional joseki table (directive-enabled)
int analysis_level = 0; // optional analysis passes (directive-enabled)

int moves_x[128];
int moves_y[128];
int num_moves = 0;

int cell(int x, int y) {
    return y * 9 + x;
}

int in_board(int x, int y) {
    if (x < 0) { return 0; }
    if (x > 8) { return 0; }
    if (y < 0) { return 0; }
    if (y > 8) { return 0; }
    return 1;
}

int enemy_of(int color) {
    if (color == 1) { return 2; }
    return 1;
}

// A stone with all four in-board neighbours hostile is captured.
int try_capture(int x, int y) {
    int color = board[cell(x, y)];
    int foe = enemy_of(color);
    int surrounded = 1;
    if (in_board(x - 1, y) && board[cell(x - 1, y)] != foe) {
        surrounded = 0;
    }
    if (in_board(x + 1, y) && board[cell(x + 1, y)] != foe) {
        surrounded = 0;
    }
    if (in_board(x, y - 1) && board[cell(x, y - 1)] != foe) {
        surrounded = 0;
    }
    if (in_board(x, y + 1) && board[cell(x, y + 1)] != foe) {
        surrounded = 0;
    }
    if (x == 0 || x == 8 || y == 0 || y == 8) {
        surrounded = 0;     // simplified: edge stones are safe
    }
    if (surrounded == 1) {
        board[cell(x, y)] = 0;
        if (captures < 12) {
            capture_log[captures] = cell(x, y);
        }
        captures = captures + 1;
        return 1;
    }
    return 0;
}

int count_liberties(int x, int y) {
    int libs = 0;
    if (in_board(x - 1, y) && board[cell(x - 1, y)] == 0) {
        libs = libs + 1;
    }
    if (in_board(x + 1, y) && board[cell(x + 1, y)] == 0) {
        libs = libs + 1;
    }
    if (in_board(x, y - 1) && board[cell(x, y - 1)] == 0) {
        libs = libs + 1;
    }
    if (in_board(x, y + 1) && board[cell(x, y + 1)] == 0) {
        libs = libs + 1;
    }
    return libs;
}

int refresh_liberties() {
    int y = 0;
    while (y < 9) {
        int x = 0;
        while (x < 9) {
            if (board[cell(x, y)] != 0) {
                liberties[cell(x, y)] = count_liberties(x, y);
            } else {
                liberties[cell(x, y)] = 0;
            }
            x = x + 1;
        }
        y = y + 1;
    }
    return 0;
}

int spread_influence() {
    int i = 0;
    while (i < 81) {
        int v = 0;
        if (board[i] == 1) { v = 8; }
        if (board[i] == 2) { v = 0 - 8; }
        influence[i] = v;
        i = i + 1;
    }
    int pass = 0;
    while (pass < 2) {
        i = 0;
        while (i < 81) {
            int acc = influence[i] * 2;
            if (i >= 9) { acc = acc + influence[i - 9]; }
            if (i < 72) { acc = acc + influence[i + 9]; }
            if (i % 9 != 0) { acc = acc + influence[i - 1]; }
            if (i % 9 != 8) { acc = acc + influence[i + 1]; }
            influence[i] = acc / 2;
            i = i + 1;
        }
        pass = pass + 1;
    }
    return 0;
}

// Seeded bug go-m1: accumulates the ninth edge cell too -- the `<=`
// walks one word past edge_row into its guard zone.
int score_edges() {
    int i = 0;
    int sum = 0;
    while (i < 9) {
        edge_row[i] = influence[i] + influence[72 + i];
        i = i + 1;
    }
    i = 0;
    while (i <= 9) {
        sum = sum + edge_row[i];
        i = i + 1;
    }
    return sum;
}

// Seeded bug go-m2: flushes the capture log with an off-by-one scan;
// hidden behind phase == 2 AND captures > 10.
int flush_capture_log() {
    int i = 0;
    int sum = 0;
    while (i <= 12) {
        sum = sum + capture_log[i];
        i = i + 1;
    }
    return sum;
}

int *territory_tab = 0; // optional territory cache (directive-enabled)
int replay_mark = -1;
int replay_notes[10];

int apply_patterns(int c) {
    int bonus = 0;
    if (pattern_tab != 0) {
        bonus = bonus + pattern_tab[c % 16];
        if (pattern_tab[0] > 99) {
            pattern_tab[0] = 0;
        }
        pattern_tab[c % 16] = bonus;
    }
    if (joseki_tab != 0) {
        bonus = bonus + joseki_tab[c % 8];
        joseki_tab[c % 8] = joseki_tab[c % 8] + 1;
    }
    if (territory_tab != 0) {
        int row = c / 9;
        bonus = bonus + territory_tab[row];
        if (territory_tab[row] < influence[c]) {
            territory_tab[row] = influence[c];
        }
    }
    // replay_mark is -1 unless a replay session armed it; the
    // comparison is variable-vs-variable, so no consistency fix
    // applies (a residual after-fix false positive).
    if (replay_mark == move_count) {
        replay_notes[replay_mark % 10] = c;
    }
    return bonus;
}

// ---- optional analysis passes (configuration-gated; benign runs
// ---- never enable them, so NT-Paths are their only visitor) ----

int region_density(int base) {
    int stones = 0;
    int cells = 0;
    int dy = 0;
    while (dy < 3) {
        int dx = 0;
        while (dx < 3) {
            int c = base + dy * 9 + dx;
            if (c >= 0 && c < 81) {
                cells = cells + 1;
                if (board[c] != 0) {
                    stones = stones + 1;
                }
            }
            dx = dx + 1;
        }
        dy = dy + 1;
    }
    if (cells != 0) {
        return stones * 100 / cells;
    }
    return 0;
}

int diag_territory() {
    int score = 0;
    int r = 0;
    while (r < 9) {
        int d = region_density(r * 9);
        if (d > 66) {
            score = score + 3;
        } else if (d > 33) {
            score = score + 2;
        } else if (d > 0) {
            score = score + 1;
        }
        if (d == 100) {
            score = score + 5;
        }
        r = r + 3;
    }
    return score;
}

int diag_shape(int c) {
    int kind = 0;
    int libs = liberties[c % 81];
    if (libs == 0) {
        kind = 1;
    } else if (libs == 1) {
        kind = 2;
        if (influence[c % 81] > 4) {
            kind = 3;
        }
    } else if (libs == 2) {
        kind = 4;
        if (c % 9 == 0 || c % 9 == 8) {
            kind = 5;
        }
    } else {
        kind = 6;
        if (influence[c % 81] < 0 - 4) {
            kind = 7;
        }
    }
    return kind;
}

int diag_balance() {
    int b = 0;
    int w = 0;
    int i = 0;
    while (i < 81) {        // sampled scan
        if (influence[i] > 0) { b = b + 1; }
        if (influence[i] < 0) { w = w + 1; }
        i = i + 4;
    }
    // A real analysis pass runs only after both sides have played, so
    // w is nonzero there; an NT-Path arriving on an early board
    // divides by zero and crashes (one of Figure 3's crash sites).
    return b * 100 / w;
}

// Dame resolution: decide neutral points in a close endgame.
int resolve_dame(int c) {
    int owner = 0;
    int b_adj = 0;
    int w_adj = 0;
    if (c >= 9 && board[c - 9] == 1) { b_adj = b_adj + 1; }
    if (c >= 9 && board[c - 9] == 2) { w_adj = w_adj + 1; }
    if (c < 72 && board[c + 9] == 1) { b_adj = b_adj + 1; }
    if (c < 72 && board[c + 9] == 2) { w_adj = w_adj + 1; }
    if (c % 9 != 0 && board[c - 1] == 1) { b_adj = b_adj + 1; }
    if (c % 9 != 0 && board[c - 1] == 2) { w_adj = w_adj + 1; }
    if (c % 9 != 8 && board[c + 1] == 1) { b_adj = b_adj + 1; }
    if (c % 9 != 8 && board[c + 1] == 2) { w_adj = w_adj + 1; }
    if (b_adj > w_adj) {
        owner = 1;
    } else if (w_adj > b_adj) {
        owner = 2;
    }
    return owner;
}

int deep_endgame(int margin) {
    // Reachable only in a scored endgame with a close margin: two
    // nested rarely-true conditions even an NT-Path cannot line up.
    int adjust = 0;
    if (margin < 3) {
        if (captures > 20) {
            int i = 0;
            while (i < 81) {
                if (board[i] == 0 && influence[i] == 0) {
                    if (resolve_dame(i) == 1) {
                        adjust = adjust + 1;
                    }
                }
                i = i + 1;
            }
            if (adjust > 40) {
                adjust = 40;
            }
        }
    }
    return adjust;
}

int analysis_pass(int c) {
    int v = 0;
    if (analysis_level > 0) {
        v = v + diag_territory();
        v = v + diag_shape(c);
    }
    if (analysis_level > 1) {
        v = v + diag_balance();
    }
    if (analysis_level > 2) {
        v = v + deep_endgame(black_score - white_score);
    }
    return v;
}

int play_move(int x, int y, int color) {
    int c = cell(x, y);
    if (board[c] != 0) { return 0; }
    board[c] = color;
    move_count = move_count + 1;
    if (move_count > 40) {
        phase = 2;
    }
    if ((x == 0 || x == 8) && (y == 0 || y == 8)) {
        corner_plays = corner_plays + 1;
    }
    try_capture(x, y);
    refresh_liberties();
    spread_influence();

    if (edge_focus == 1) {
        black_score = black_score + score_edges();
    }
    if (phase == 2) {
        if (captures > 10) {
            white_score = white_score + flush_capture_log();
        }
    }
    black_score = black_score + apply_patterns(c);
    black_score = black_score + analysis_pass(c);
    return 1;
}

int final_score() {
    int i = 0;
    int b = 0;
    int w = 0;
    while (i < 81) {
        if (influence[i] > 2) { b = b + 1; }
        if (influence[i] < 0 - 2) { w = w + 1; }
        i = i + 1;
    }
    print_str("black=");
    print_int(b + black_score);
    print_char(10);
    print_str("white=");
    print_int(w + white_score);
    print_char(10);
    print_str("captures=");
    print_int(captures);
    print_char(10);
    return 0;
}

// Directive moves (x == 9) enable optional analysis features:
// y == 0 edge scoring, y == 1 pattern table, y == 2 joseki table,
// y == 3+ deeper analysis passes.
int handle_directive(int y) {
    if (y == 0) {
        edge_focus = 1;
    }
    if (y == 1) {
        pattern_tab = malloc(16);
    }
    if (y == 2) {
        joseki_tab = malloc(8);
    }
    if (y >= 3) {
        analysis_level = y - 2;
    }
    if (y == 7) {
        territory_tab = malloc(9);
    }
    if (y == 8) {
        replay_mark = move_count + 3;
    }
    return y;
}

// SPEC-style: the whole move list is read up front, then the
// evaluator runs without touching I/O until the final score dump.
int read_game() {
    int x = read_int();
    while (x != -1 && num_moves < 128) {
        int y = read_int();
        if (y == -1) { return num_moves; }
        moves_x[num_moves] = x;
        moves_y[num_moves] = y;
        num_moves = num_moves + 1;
        x = read_int();
    }
    return num_moves;
}

int main() {
    int color = 1;
    int i = 0;
    read_game();
    while (i < num_moves) {
        int x = moves_x[i];
        int y = moves_y[i];
        if (x == 9) {
            handle_directive(y);
        } else if (in_board(x, y)) {
            if (play_move(x, y, color)) {
                color = enemy_of(color);
            }
        }
        i = i + 1;
    }
    final_score();
    return 0;
}
)MC";

/** Random benign games: 20-34 moves, no corner openings needed. */
std::vector<int32_t>
benignGame(Rng &rng)
{
    std::vector<int32_t> in;
    int n = static_cast<int>(rng.nextRange(20, 34));
    for (int i = 0; i < n; ++i) {
        in.push_back(static_cast<int32_t>(rng.nextRange(0, 8)));
        in.push_back(static_cast<int32_t>(rng.nextRange(0, 8)));
    }
    in.push_back(-1);
    return in;
}

} // namespace

Workload
makeGo()
{
    Workload w;
    w.name = "pe_go";
    w.description = "SPEC95 099.go stand-in (board evaluator)";
    w.tools = "memory";
    w.paperLoc = 29623;
    w.maxNtPathLength = 1000;
    w.source = source;

    Rng rng(0xbadc0de5);
    for (int i = 0; i < 50; ++i)
        w.benignInputs.push_back(benignGame(rng));

    {
        BugSpec b;
        b.id = "go-m1";
        b.kind = BugSpec::Kind::Memory;
        b.funcName = "score_edges";
        b.expectPeDetect = true;
        b.description = "off-by-one edge accumulation overruns "
                        "edge_row into its guard zone";
        w.bugs.push_back(b);
    }
    {
        BugSpec b;
        b.id = "go-m2";
        b.kind = BugSpec::Kind::Memory;
        b.funcName = "flush_capture_log";
        b.expectPeDetect = false;
        b.missCategory = "special-input";
        b.description = "capture-log flush overrun behind two nested "
                        "conditions";
        w.bugs.push_back(b);
    }

    {
        // go-m1 trigger: the (9,0) directive enables edge scoring;
        // the next move runs the faulty score_edges.
        std::vector<int32_t> in = {9, 0, 4, 4, 2, 2, -1};
        w.triggerInputs["go-m1"] = in;
    }
    {
        // go-m2 trigger: surround an interior cell with white, then
        // let black repeatedly play into it (captured every time),
        // with filler moves to push move_count past 40.
        std::vector<int32_t> in;
        auto mv = [&in](int x, int y) {
            in.push_back(x);
            in.push_back(y);
        };
        // Black throwaways alternate with white building the trap
        // around (4,4): white at (3,4), (5,4), (4,3), (4,5).
        mv(0, 0);   // B
        mv(3, 4);   // W
        mv(0, 1);   // B
        mv(5, 4);   // W
        mv(0, 2);   // B
        mv(4, 3);   // W
        mv(0, 3);   // B
        mv(4, 5);   // W
        // Now black plays (4,4): all four neighbours white ->
        // captured immediately; white plays a fresh cell; repeat.
        int wx = 6;
        int wy = 0;
        for (int k = 0; k < 12; ++k) {
            mv(4, 4);           // B, captured and removed
            mv(wx, wy);         // W filler on a fresh cell
            wy += 1;
            if (wy == 4) {
                wy = 0;
                wx += 1;
            }
        }
        // Pad past move 40 (phase 2) with fresh cells; every move
        // from 41 on runs the faulty capture-log flush.
        int px = 0;
        int py = 5;
        for (int k = 0; k < 14; ++k) {
            mv(px, py);
            px += 1;
            if (px == 4) {
                px = 0;
                py += 1;
            }
        }
        in.push_back(-1);
        w.triggerInputs["go-m2"] = in;
    }

    return w;
}

} // namespace pe::workloads
