/**
 * @file
 * pe_vpr: MiniC stand-in for SPEC2000 175.vpr (Figure 3(c), coverage
 * and overhead experiments; no seeded bugs).
 *
 * A simulated-annealing placer: cells connected by nets are placed
 * on a grid; random swaps are accepted when they lower the bounding-
 * box wirelength (or probabilistically while the temperature is
 * high).  Progress lines are printed once per temperature step, so
 * NT-Paths see a mix of max-length and unsafe-event terminations —
 * between go (almost never stops early) and gzip (mostly unsafe).
 */

#include "src/support/rng.hh"
#include "src/workloads/workloads.hh"

namespace pe::workloads
{

namespace
{

const char *source = R"MC(
// ---- pe_vpr (175.vpr stand-in) ----

int cell_x[40];
int cell_y[40];
int net_a[60];
int net_b[60];
int grid[144];          // 12x12 occupancy (cell id + 1, 0 = empty)

int num_cells = 0;
int num_nets = 0;
int seed = 12345;
int temperature = 1000;
int accepted = 0;
int rejected = 0;
int uphill_taken = 0;
int steps = 0;

int next_rand() {
    seed = seed * 1103515245 + 12345;
    int r = seed;
    if (r < 0) { r = 0 - r; }
    if (r < 0) { r = 0; }   // two's-complement minimum
    return r;
}

int net_cost(int n) {
    int a = net_a[n];
    int b = net_b[n];
    int dx = cell_x[a] - cell_x[b];
    int dy = cell_y[a] - cell_y[b];
    if (dx < 0) { dx = 0 - dx; }
    if (dy < 0) { dy = 0 - dy; }
    return dx + dy;
}

int total_cost() {
    int c = 0;
    int n = 0;
    while (n < num_nets) {
        c = c + net_cost(n);
        n = n + 1;
    }
    return c;
}

int cell_cost(int id) {
    int c = 0;
    int n = 0;
    while (n < num_nets) {
        if (net_a[n] == id || net_b[n] == id) {
            c = c + net_cost(n);
        }
        n = n + 1;
    }
    return c;
}

int try_swap() {
    int id = next_rand() % num_cells;
    int nx = next_rand() % 12;
    int ny = next_rand() % 12;
    int old_x = cell_x[id];
    int old_y = cell_y[id];
    int other = grid[ny * 12 + nx] - 1;

    int before = cell_cost(id);
    if (other >= 0 && other != id) {
        before = before + cell_cost(other);
    }

    // Tentatively move (swap when the target is occupied).
    cell_x[id] = nx;
    cell_y[id] = ny;
    if (other >= 0 && other != id) {
        cell_x[other] = old_x;
        cell_y[other] = old_y;
    }

    int after = cell_cost(id);
    if (other >= 0 && other != id) {
        after = after + cell_cost(other);
    }

    int delta = after - before;
    int take = 0;
    if (delta < 0) {
        take = 1;
    } else if (delta == 0) {
        take = 1;
    } else if (temperature > 400) {
        // Uphill moves while hot, with probability ~ temperature.
        if (next_rand() % 1000 < temperature / 4) {
            take = 1;
            uphill_taken = uphill_taken + 1;
        }
    }

    if (take == 1) {
        grid[old_y * 12 + old_x] = 0;
        if (other >= 0 && other != id) {
            grid[old_y * 12 + old_x] = other + 1;
        }
        grid[ny * 12 + nx] = id + 1;
        accepted = accepted + 1;
        return 1;
    }

    // Undo.
    cell_x[id] = old_x;
    cell_y[id] = old_y;
    if (other >= 0 && other != id) {
        cell_x[other] = nx;
        cell_y[other] = ny;
    }
    rejected = rejected + 1;
    return 0;
}

// ---- verify mode (negative seed input; never enabled benignly) ----

int verify_mode = 0;

int verify_grid() {
    int bad = 0;
    int i = 0;
    while (i < num_cells) {
        int c = grid[cell_y[i] * 12 + cell_x[i]];
        if (c != i + 1) {
            bad = bad + 1;
            if (c == 0) {
                bad = bad + 1;      // cell missing entirely
            }
        }
        i = i + 1;
    }
    return bad;
}

int congestion_probe() {
    int worst = 0;
    int y = 0;
    while (y < 12) {
        int occupied = 0;
        int x = 0;
        while (x < 12) {
            if (grid[y * 12 + x] != 0) {
                occupied = occupied + 1;
            }
            x = x + 1;
        }
        if (occupied > worst) {
            worst = occupied;
        }
        y = y + 4;      // sampled rows
    }
    // Congestion per accepted move: a real probe runs once moves have
    // been accepted; an NT-Path arriving before the first acceptance
    // divides by zero (a Figure-3 crash site).
    return num_nets * worst / accepted;
}

// Refinement: greedily re-place the cell on the worst net.
// Reachable only with deep verification and 31+ uphill moves.
int refine_worst() {
    int worst_net = 0;
    int worst_cost = -1;
    int n = 0;
    while (n < num_nets) {
        int c = net_cost(n);
        if (c > worst_cost) {
            worst_cost = c;
            worst_net = n;
        }
        n = n + 1;
    }
    int victim = net_a[worst_net];
    int mate = net_b[worst_net];
    int best_x = cell_x[victim];
    int best_y = cell_y[victim];
    int dx = -1;
    while (dx <= 1) {
        int dy = -1;
        while (dy <= 1) {
            int tx = cell_x[mate] + dx;
            int ty = cell_y[mate] + dy;
            if (tx >= 0 && tx < 12 && ty >= 0 && ty < 12) {
                if (grid[ty * 12 + tx] == 0) {
                    best_x = tx;
                    best_y = ty;
                }
            }
            dy = dy + 1;
        }
        dx = dx + 1;
    }
    if (best_x != cell_x[victim] || best_y != cell_y[victim]) {
        grid[cell_y[victim] * 12 + cell_x[victim]] = 0;
        cell_x[victim] = best_x;
        cell_y[victim] = best_y;
        grid[best_y * 12 + best_x] = victim + 1;
        return 1;
    }
    return 0;
}

int deep_verify() {
    int v = 0;
    // Nested rare conditions: beyond a single NT-Path flip.
    if (verify_mode > 1) {
        if (uphill_taken > 30) {
            int n = 0;
            while (n < num_nets) {
                if (net_cost(n) > 12) {
                    v = v + 1;
                }
                n = n + 1;
            }
            v = v + refine_worst();
        }
    }
    return v;
}

int place_initial() {
    int i = 0;
    while (i < num_cells) {
        int x = (i * 7) % 12;
        int y = (i * 5 + i / 12) % 12;
        while (grid[y * 12 + x] != 0) {
            x = (x + 1) % 12;
            if (x == 0) { y = (y + 1) % 12; }
        }
        cell_x[i] = x;
        cell_y[i] = y;
        grid[y * 12 + x] = i + 1;
        i = i + 1;
    }
    return num_cells;
}

int main() {
    int i = 0;
    num_cells = read_int();
    if (num_cells < 4) { num_cells = 4; }
    if (num_cells > 40) { num_cells = 40; }
    num_nets = read_int();
    if (num_nets < 2) { num_nets = 2; }
    if (num_nets > 60) { num_nets = 60; }
    seed = read_int();
    if (seed < 0) {
        verify_mode = 0 - seed;
        seed = 12345;
    }
    if (seed == 0) { seed = 12345; }

    while (i < num_nets) {
        net_a[i] = next_rand() % num_cells;
        net_b[i] = next_rand() % num_cells;
        i = i + 1;
    }
    place_initial();

    print_str("initial=");
    print_int(total_cost());
    print_char(10);

    while (temperature > 200) {
        int moves = 0;
        while (moves < num_cells * 2) {
            try_swap();
            moves = moves + 1;
            steps = steps + 1;
        }
        if (verify_mode > 0) {
            verify_grid();
            congestion_probe();
        }
        if (verify_mode > 1) {
            deep_verify();
        }
        temperature = temperature * 9 / 10;
        print_str("t=");
        print_int(temperature);
        print_str(" cost=");
        print_int(total_cost());
        print_char(10);
    }

    print_str("final=");
    print_int(total_cost());
    print_char(10);
    print_str("accepted=");
    print_int(accepted);
    print_char(10);
    print_str("uphill=");
    print_int(uphill_taken);
    print_char(10);
    return 0;
}
)MC";

std::vector<int32_t>
benignNetlist(Rng &rng)
{
    return {static_cast<int32_t>(rng.nextRange(8, 20)),
            static_cast<int32_t>(rng.nextRange(10, 30)),
            static_cast<int32_t>(rng.nextRange(1, 1 << 20))};
}

} // namespace

Workload
makeVpr()
{
    Workload w;
    w.name = "pe_vpr";
    w.description = "SPEC2000 175.vpr stand-in (annealing placer)";
    w.tools = "none";
    w.paperLoc = 17729;
    w.maxNtPathLength = 1000;
    w.source = source;

    Rng rng(0xbadc0de9);
    for (int i = 0; i < 50; ++i)
        w.benignInputs.push_back(benignNetlist(rng));

    return w;
}

} // namespace pe::workloads
