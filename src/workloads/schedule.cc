/**
 * @file
 * schedule: MiniC re-creation of the Siemens schedule benchmark
 * (paper Table 3: 412 LOC, 5 seeded bug versions).
 *
 * A three-level priority scheduler driven by a command stream:
 *   1 p   add a job with priority p (1..3)
 *   2     tick: run the highest-priority job for one quantum
 *   3     block the running job
 *   4     unblock the oldest blocked job
 *   5     finish the running job
 *
 * Seeded bugs: 301/302 PE-detectable; 303/304 value-coverage-limited
 * (paper: schedule v1 and v3 "are limited by the value coverage
 * problem instead of the path coverage problem"); 305 hot-entry-edge
 * (the entry branch edge is intensively exercised early, saturating
 * its 4-bit counter before the interesting state arises — the paper's
 * category (2), fixable by adding a random factor to selection).
 */

#include "src/support/rng.hh"
#include "src/workloads/workloads.hh"

namespace pe::workloads
{

namespace
{

const char *source = R"MC(
// ---- schedule (Siemens-suite re-creation) ----

int q1[16];
int q2[16];
int q3[16];
int n1 = 0;
int n2 = 0;
int n3 = 0;

int blocked[16];
int nblocked = 0;

int running = 0;        // job id of the running job, 0 = none
int next_id = 1;
int quantum = 0;
int ticks = 0;
int njobs = 0;
int finished = 0;
int idle = 0;
int starve = 0;
int promoted = 0;
int migrations = 0;

int push(int *q, int n, int id) {
    if (n < 16) {
        q[n] = id;
        return n + 1;
    }
    return n;
}

int shift(int *q, int n) {
    int i = 1;
    while (i < n) {
        q[i - 1] = q[i];
        i = i + 1;
    }
    return n - 1;
}

int add_job(int prio) {
    int id = next_id;
    next_id = next_id + 1;
    njobs = njobs + 1;
    // Seeded bug 303 (value coverage, the paper's v1): the 50th job
    // corrupts the faulty bookkeeping.
    assert(njobs != 50, 303);
    if (prio == 3) {
        n3 = push(q3, n3, id);
    } else if (prio == 2) {
        n2 = push(q2, n2, id);
    } else {
        n1 = push(q1, n1, id);
    }
    return id;
}

int dispatch() {
    if (running != 0) { return running; }
    if (n3 > 0) {
        running = q3[0];
        n3 = shift(q3, n3);
    } else if (n2 > 0) {
        running = q2[0];
        n2 = shift(q2, n2);
    } else if (n1 > 0) {
        running = q1[0];
        n1 = shift(q1, n1);
    }
    if (running != 0) {
        quantum = 4;
        idle = 0;
    }
    return running;
}

int tick() {
    ticks = ticks + 1;
    // Seeded bug 304 (value coverage, the paper's v3): tick 200
    // overflows the faulty timeslice table.
    assert(ticks != 200, 304);
    dispatch();
    if (running == 0) {
        idle = idle + 1;
        if (idle > 2) {
            // Seeded bug 305 (hot entry edge): idle consolidation
            // mishandles a long blocked queue.  The entry edge is
            // exercised early with short queues, saturating its
            // exercise counter before the queue ever grows.
            assert(nblocked < 8, 305);
            migrations = migrations + 1;
        }
        return 0;
    }
    // Busy: low-priority jobs starve while others run.
    starve = starve + n1;
    if (starve > 40) {
        // Seeded bug 302: long starvation must promote a job; the
        // fault never sets the flag.
        assert(promoted == 1, 302);
        starve = 0;
    }
    quantum = quantum - 1;
    if (quantum == 0) {
        // Timeslice over: requeue at priority 1 (aging).
        n1 = push(q1, n1, running);
        running = 0;
    }
    return 1;
}

// ---- accounting mode (command 9; never issued benignly) ----

int accounting = 0;
int tick_class[6];

int classify_tick(int ran) {
    int c = 0;
    if (ran == 0) {
        c = 1;
        if (nblocked > 0) {
            c = 2;
        }
    } else {
        c = 3;
        if (quantum <= 1) {
            c = 4;
        } else if (n3 > 4) {
            c = 5;
        }
    }
    tick_class[c] = tick_class[c] + 1;
    return c;
}

int fairness_report() {
    int spread = 0;
    if (n1 > n3) {
        spread = n1 - n3;
    } else {
        spread = n3 - n1;
    }
    if (spread > 4) {
        spread = 4;
        if (n2 == 0) {
            spread = 5;
        }
    }
    return spread;
}

// Recovery: rebalance the three ready queues after heavy churn.
// Reachable only with accounting armed twice and 13+ finished jobs.
int rebalance_queues() {
    int moved = 0;
    while (n3 > 8 && n1 < 16) {
        n3 = n3 - 1;
        n1 = push(q1, n1, q3[n3]);
        moved = moved + 1;
    }
    while (n2 > 12 && n1 < 16) {
        n2 = n2 - 1;
        n1 = push(q1, n1, q2[n2]);
        moved = moved + 1;
    }
    if (moved > 0) {
        starve = 0;
        promoted = 1;
    }
    if (n1 > 12 && n3 < 4) {
        int give = n1 - 12;
        while (give > 0 && n3 < 16) {
            n1 = n1 - 1;
            n3 = push(q3, n3, q1[n1]);
            give = give - 1;
            moved = moved + 1;
        }
    }
    return moved;
}

int deep_accounting() {
    int v = 0;
    // Two nested rare conditions: beyond a single NT-Path flip.
    if (accounting > 1) {
        if (finished > 12) {
            int i = 0;
            while (i < 6) {
                if (tick_class[i] > v) {
                    v = tick_class[i];
                }
                i = i + 1;
            }
            v = v + rebalance_queues();
        }
    }
    return v;
}

int block_running() {
    if (running != 0) {
        if (nblocked > 13) {
            // Seeded bug 301: the block queue is nearly full and the
            // overflow handling was dropped by the fault.
            assert(nblocked < 14, 301);
        }
        nblocked = push(blocked, nblocked, running);
        running = 0;
    }
    return nblocked;
}

int unblock_one() {
    if (nblocked > 0) {
        int id = blocked[0];
        nblocked = shift(blocked, nblocked);
        n2 = push(q2, n2, id);
    }
    return nblocked;
}

int main() {
    int cmd = read_int();
    while (cmd != 0 && cmd != -1) {
        if (cmd == 1) {
            int prio = read_int();
            if (prio < 1) { prio = 1; }
            if (prio > 3) { prio = 3; }
            add_job(prio);
        } else if (cmd == 2) {
            tick();
        } else if (cmd == 3) {
            block_running();
        } else if (cmd == 4) {
            unblock_one();
        } else if (cmd == 5) {
            if (running != 0) {
                finished = finished + 1;
                running = 0;
            }
        } else if (cmd == 9) {
            accounting = accounting + 1;
        }
        if (accounting > 0) {
            classify_tick(running);
            fairness_report();
        }
        if (accounting > 1) {
            deep_accounting();
        }
        cmd = read_int();
    }
    print_str("jobs=");
    print_int(njobs);
    print_char(10);
    print_str("ticks=");
    print_int(ticks);
    print_char(10);
    print_str("finished=");
    print_int(finished);
    print_char(10);
    print_str("migrations=");
    print_int(migrations);
    print_char(10);
    return 0;
}
)MC";

/**
 * Benign command streams, two phases:
 *  - phase 1: single jobs with blocked idle periods, so the
 *    `idle > 2` consolidation edge is exercised both ways (and its
 *    4-bit counter saturates) while the blocked queue is short;
 *  - phase 2: the blocked queue grows to >= 8 while the machine is
 *    kept busy, followed by at most two idle ticks — the faulty
 *    consolidation never runs on the taken path, and PathExpander's
 *    saturated counter blocks further NT-Paths there.
 * Kept under 50 jobs and 200 ticks so 303/304 stay dormant, and
 * starvation never accumulates past 40.
 */
std::vector<int32_t>
benignStream(Rng &rng)
{
    std::vector<int32_t> in;
    auto add = [&in](int prio) {
        in.push_back(1);
        in.push_back(prio);
    };
    auto ticks = [&in](int n) {
        for (int i = 0; i < n; ++i)
            in.push_back(2);
    };

    // Phase 1: job runs, gets blocked, machine idles, job finishes.
    int bursts = static_cast<int>(rng.nextRange(2, 4));
    for (int b = 0; b < bursts; ++b) {
        add(static_cast<int>(rng.nextRange(1, 3)));
        ticks(2);               // dispatch + run
        in.push_back(3);        // block the runner -> queues empty
        ticks(static_cast<int>(rng.nextRange(3, 5)));   // idle 1..4
        in.push_back(4);        // unblock
        in.push_back(2);        // dispatch it
        in.push_back(5);        // finish it
        ticks(2);               // idle 1..2
    }

    // Phase 2: build a long blocked queue while staying busy.
    int burst = static_cast<int>(rng.nextRange(8, 10));
    for (int i = 0; i < burst; ++i) {
        add(3);
        in.push_back(2);        // dispatch immediately (never idle)
        in.push_back(3);        // block it
    }
    ticks(2);                   // idle 1..2 only: branch stays false
    for (int i = 0; i < 3; ++i) {
        in.push_back(4);        // unblock a few
        in.push_back(2);
        in.push_back(5);        // finish
    }
    in.push_back(0);
    return in;
}

} // namespace

Workload
makeSchedule()
{
    Workload w;
    w.name = "schedule";
    w.description = "Siemens schedule re-creation (priority scheduler)";
    w.tools = "assert";
    w.paperLoc = 412;
    w.maxNtPathLength = 200;
    w.source = source;

    Rng rng(0xbadc0de3);
    for (int i = 0; i < 50; ++i)
        w.benignInputs.push_back(benignStream(rng));

    auto assertBug = [&w](int id, bool detect, const std::string &cat,
                          const std::string &desc) {
        BugSpec b;
        b.id = "sched-a" + std::to_string(id);
        b.kind = BugSpec::Kind::Assertion;
        b.assertId = id;
        b.expectPeDetect = detect;
        b.missCategory = cat;
        b.description = desc;
        w.bugs.push_back(b);
    };
    assertBug(301, true, "", "block-queue overflow handling dropped");
    assertBug(302, true, "", "starvation never promotes a job");
    assertBug(303, false, "value-coverage", "fires on the 50th job");
    assertBug(304, false, "value-coverage", "fires on tick 200");
    assertBug(305, false, "hot-entry-edge",
              "idle consolidation with a long blocked queue; entry "
              "edge saturates early");

    // Triggers.
    {
        // 301: block 15 jobs; the 15th block sees nblocked == 14.
        std::vector<int32_t> in;
        for (int i = 0; i < 15; ++i) {
            in.push_back(1);
            in.push_back(2);
            in.push_back(2);    // tick dispatches it
            in.push_back(3);    // block it
        }
        in.push_back(0);
        w.triggerInputs["sched-a301"] = in;
    }
    {
        // 302: ten prio-1 jobs starve while a prio-3 job runs.
        std::vector<int32_t> in;
        for (int i = 0; i < 10; ++i) {
            in.push_back(1);
            in.push_back(1);
        }
        in.push_back(1);
        in.push_back(3);
        for (int i = 0; i < 6; ++i)
            in.push_back(2);    // starve grows ~10 per busy tick
        in.push_back(0);
        w.triggerInputs["sched-a302"] = in;
    }
    {
        // 303: 50 jobs.
        std::vector<int32_t> in;
        for (int i = 0; i < 50; ++i) {
            in.push_back(1);
            in.push_back(1);
        }
        in.push_back(0);
        w.triggerInputs["sched-a303"] = in;
    }
    {
        // 304: 200 idle ticks.
        std::vector<int32_t> in;
        for (int i = 0; i < 200; ++i)
            in.push_back(2);
        in.push_back(0);
        w.triggerInputs["sched-a304"] = in;
    }
    {
        // 305: block 8 jobs, then idle three-plus ticks.
        std::vector<int32_t> in;
        for (int i = 0; i < 8; ++i) {
            in.push_back(1);
            in.push_back(3);
            in.push_back(2);
            in.push_back(3);
        }
        for (int i = 0; i < 4; ++i)
            in.push_back(2);    // idle reaches 3 with nblocked == 8
        in.push_back(0);
        w.triggerInputs["sched-a305"] = in;
    }

    return w;
}

} // namespace pe::workloads
