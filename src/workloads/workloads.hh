/**
 * @file
 * Factories for the individual evaluation workloads.  One translation
 * unit per application keeps the MiniC sources reviewable.
 */

#ifndef PE_WORKLOADS_WORKLOADS_HH
#define PE_WORKLOADS_WORKLOADS_HH

#include "src/workloads/workload.hh"

namespace pe::workloads
{

Workload makeGo();              //!< 099.go-like board evaluator
Workload makeBc();              //!< bc-1.06-like calculator
Workload makeMan();             //!< man-1.5h1-like page formatter
Workload makePrintTokens();     //!< Siemens print_tokens
Workload makePrintTokens2();    //!< Siemens print_tokens2 (incl. v10)
Workload makeSchedule();        //!< Siemens schedule
Workload makeSchedule2();       //!< Siemens schedule2
Workload makeGzip();            //!< 164.gzip-like compressor
Workload makeVpr();             //!< 175.vpr-like annealing placer
Workload makeParser();          //!< 197.parser-like grammar checker

} // namespace pe::workloads

#endif // PE_WORKLOADS_WORKLOADS_HH
