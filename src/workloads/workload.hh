/**
 * @file
 * The evaluation workloads (paper Section 6.3, Table 3).
 *
 * Each workload is a MiniC program with seeded bugs, a set of benign
 * (non-bug-triggering) inputs used for the monitored runs, and for
 * each bug an optional triggering input (used by tests to prove the
 * bug is real).  See DESIGN.md for the full seeded-bug inventory and
 * the substitution rationale for the SPEC / open-source originals.
 */

#ifndef PE_WORKLOADS_WORKLOAD_HH
#define PE_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pe::workloads
{

/** One seeded bug. */
struct BugSpec
{
    enum class Kind : uint8_t { Memory, Assertion };

    std::string id;             //!< e.g. "pt2-v10"
    Kind kind = Kind::Assertion;
    int32_t assertId = 0;       //!< assertion bugs: the assert id
    std::string funcName;       //!< memory bugs: function that faults
    int lineLo = 0;             //!< memory bugs: faulting line range
    int lineHi = 0;             //!< (0/0 = anywhere in funcName)
    bool expectPeDetect = true; //!< expected outcome with default PE
    std::string missCategory;   //!< paper Section 7.1 category if missed
    std::string description;
};

/** One evaluation application. */
struct Workload
{
    std::string name;
    std::string description;
    std::string source;         //!< MiniC text
    std::string tools;          //!< "memory" or "assert"
    int paperLoc = 0;           //!< LOC of the original (Table 3)

    /** Non-bug-triggering inputs; [0] is the default monitored run. */
    std::vector<std::vector<int32_t>> benignInputs;

    /** bug id -> input that exposes it on the taken path. */
    std::map<std::string, std::vector<int32_t>> triggerInputs;

    std::vector<BugSpec> bugs;

    /** Paper Section 6.3: 100 for Siemens apps, 1000 otherwise. */
    uint32_t maxNtPathLength = 1000;
};

/** Look up a workload by name; fatal on unknown names. */
const Workload &getWorkload(const std::string &name);

/** All workload names. */
std::vector<std::string> workloadNames();

/** The seven buggy applications of Table 3. */
std::vector<std::string> buggyWorkloadNames();

/** The additional SPEC-like applications (overhead/coverage). */
std::vector<std::string> specWorkloadNames();

} // namespace pe::workloads

#endif // PE_WORKLOADS_WORKLOAD_HH
