/**
 * @file
 * Mapping detector reports back to seeded bugs.
 *
 * A memory-bug report matches a bug when it is a memory-violation
 * kind raised inside the bug's faulting function; an assertion report
 * matches on the assert id.  Distinct report sites that match no
 * seeded bug are the (PathExpander-induced) false positives counted
 * in the paper's Table 5.
 */

#ifndef PE_WORKLOADS_ANALYSIS_HH
#define PE_WORKLOADS_ANALYSIS_HH

#include "src/detect/report.hh"
#include "src/isa/program.hh"
#include "src/workloads/workload.hh"

namespace pe::workloads
{

/** Outcome of one seeded bug. */
struct BugOutcome
{
    const BugSpec *bug = nullptr;
    bool detected = false;
};

/** Aggregate analysis of one run's reports. */
struct DetectionAnalysis
{
    std::vector<BugOutcome> outcomes;
    int numDetected = 0;
    int falsePositiveSites = 0;
};

/**
 * Analyze @p monitor against the seeded bugs of @p workload.
 * @param memoryTools true when running under a memory checker
 *        (CCured-like / iWatcher-like): only Memory bugs are "tested";
 *        false for assertions: only Assertion bugs are tested.
 */
DetectionAnalysis analyzeReports(const Workload &workload,
                                 const isa::Program &program,
                                 const detect::MonitorArea &monitor,
                                 bool memoryTools);

} // namespace pe::workloads

#endif // PE_WORKLOADS_ANALYSIS_HH
