/**
 * @file
 * pe_parser: MiniC stand-in for SPEC2000 197.parser (coverage and
 * overhead experiments; no seeded bugs).
 *
 * A sentence grammar checker: words are looked up in a small
 * dictionary with part-of-speech tags and sentences are validated
 * against a phrase grammar by a backtracking matcher.
 */

#include "src/support/rng.hh"
#include "src/workloads/workloads.hh"

namespace pe::workloads
{

namespace
{

const char *source = R"MC(
// ---- pe_parser (197.parser stand-in) ----

// Part-of-speech tags: 1 det, 2 noun, 3 verb, 4 adj, 5 adv, 6 prep,
// 0 unknown.
int word_buf[12];
int word_len = 0;

int tags[40];           // tag sequence of the current sentence
int ntags = 0;

int sentences = 0;
int accepted = 0;
int rejected = 0;
int unknown_words = 0;
int long_sentences = 0;

int dict_the[4] = { 't', 'h', 'e', 0 };
int dict_a[2] = { 'a', 0 };
int dict_dog[4] = { 'd', 'o', 'g', 0 };
int dict_cat[4] = { 'c', 'a', 't', 0 };
int dict_man[4] = { 'm', 'a', 'n', 0 };
int dict_park[5] = { 'p', 'a', 'r', 'k', 0 };
int dict_sees[5] = { 's', 'e', 'e', 's', 0 };
int dict_walks[6] = { 'w', 'a', 'l', 'k', 's', 0 };
int dict_likes[6] = { 'l', 'i', 'k', 'e', 's', 0 };
int dict_big[4] = { 'b', 'i', 'g', 0 };
int dict_old[4] = { 'o', 'l', 'd', 0 };
int dict_quickly[8] = { 'q', 'u', 'i', 'c', 'k', 'l', 'y', 0 };
int dict_in[3] = { 'i', 'n', 0 };
int dict_on[3] = { 'o', 'n', 0 };

int word_is(int *entry) {
    int i = 0;
    while (entry[i] != 0 && i < word_len) {
        if (entry[i] != word_buf[i]) { return 0; }
        i = i + 1;
    }
    if (entry[i] == 0 && i == word_len) { return 1; }
    return 0;
}

int lookup_tag() {
    if (word_is(dict_the) || word_is(dict_a)) { return 1; }
    if (word_is(dict_dog) || word_is(dict_cat)) { return 2; }
    if (word_is(dict_man) || word_is(dict_park)) { return 2; }
    if (word_is(dict_sees) || word_is(dict_walks)) { return 3; }
    if (word_is(dict_likes)) { return 3; }
    if (word_is(dict_big) || word_is(dict_old)) { return 4; }
    if (word_is(dict_quickly)) { return 5; }
    if (word_is(dict_in) || word_is(dict_on)) { return 6; }
    return 0;
}

// NP := det adj* noun | noun
int match_np(int pos) {
    int p = pos;
    if (p < ntags && tags[p] == 1) {
        p = p + 1;
        while (p < ntags && tags[p] == 4) {
            p = p + 1;
        }
        if (p < ntags && tags[p] == 2) {
            return p + 1;
        }
        return -1;
    }
    if (p < ntags && tags[p] == 2) {
        return p + 1;
    }
    return -1;
}

// PP := prep NP
int match_pp(int pos) {
    if (pos < ntags && tags[pos] == 6) {
        return match_np(pos + 1);
    }
    return -1;
}

// VP := verb adv? NP? PP?
int match_vp(int pos) {
    int p = pos;
    if (p >= ntags || tags[p] != 3) {
        return -1;
    }
    p = p + 1;
    if (p < ntags && tags[p] == 5) {
        p = p + 1;
    }
    int after_np = match_np(p);
    if (after_np > 0) {
        p = after_np;
    }
    int after_pp = match_pp(p);
    if (after_pp > 0) {
        p = after_pp;
    }
    return p;
}

// S := NP VP
int match_sentence() {
    int p = match_np(0);
    if (p < 0) { return 0; }
    p = match_vp(p);
    if (p < 0) { return 0; }
    if (p == ntags) { return 1; }
    return 0;
}

// ---- style analysis (enabled by a "!style" word; never benign) ----

int style_mode = 0;

int style_check() {
    int score = 0;
    int i = 0;
    int nouns = 0;
    int verbs = 0;
    int adjs = 0;
    while (i < ntags) {
        if (tags[i] == 2) {
            nouns = nouns + 1;
        } else if (tags[i] == 3) {
            verbs = verbs + 1;
        } else if (tags[i] == 4) {
            adjs = adjs + 1;
            if (i + 1 < ntags && tags[i + 1] == 4) {
                score = score + 1;  // stacked adjectives
            }
        } else if (tags[i] == 5) {
            if (i == 0) {
                score = score + 2;  // leading adverb
            }
        }
        i = i + 1;
    }
    if (verbs > 1) {
        score = score + verbs - 1;
    }
    if (nouns == 0) {
        score = score + 3;
    } else if (adjs > nouns) {
        score = score + 1;
    }
    return score;
}

// Suggestions: propose fixes for a rejected sentence.  Reachable
// only with style mode armed twice and four-plus long sentences.
int suggest_fixes() {
    int fixes = 0;
    int i = 0;
    int last = -1;
    while (i < ntags) {
        int t = tags[i];
        if (t == 0) {
            fixes = fixes + 1;          // replace unknown word
        } else if (t == last) {
            if (t == 2) {
                fixes = fixes + 1;      // noun noun: insert prep
            } else if (t == 3) {
                fixes = fixes + 2;      // verb verb: split sentence
            } else if (t == 1) {
                fixes = fixes + 1;      // det det: drop one
            }
        } else if (t == 6 && i + 1 == ntags) {
            fixes = fixes + 1;          // trailing preposition
        }
        last = t;
        i = i + 1;
    }
    if (ntags > 20) {
        fixes = fixes + 2;
    } else if (ntags > 12) {
        fixes = fixes + 1;
    }
    return fixes;
}

int deep_style() {
    int v = 0;
    // Nested rare conditions: beyond a single NT-Path flip.
    if (style_mode > 1) {
        if (long_sentences > 3) {
            int i = 0;
            while (i < ntags) {
                if (tags[i] == 6) {
                    v = v + 1;
                }
                i = i + 1;
            }
            if (v > 2) {
                v = 2;
            }
            v = v + suggest_fixes();
        }
    }
    return v;
}

int read_word() {
    int c = read_char();
    while (c == 32) {
        c = read_char();
    }
    if (c == -1) { return -1; }
    if (c == 10 || c == '.') { return 0; }
    word_len = 0;
    while (c != -1 && c != 32 && c != 10 && c != '.') {
        if (word_len < 11) {
            word_buf[word_len] = c;
            word_len = word_len + 1;
        }
        c = read_char();
    }
    return 1;
}

int main() {
    int more = 1;
    while (more) {
        ntags = 0;
        int r = read_word();
        while (r == 1) {
            int t = lookup_tag();
            if (t == 0) {
                unknown_words = unknown_words + 1;
                if (word_buf[0] == '!') {
                    style_mode = style_mode + 1;    // "!style"
                }
            }
            if (ntags < 40) {
                tags[ntags] = t;
                ntags = ntags + 1;
            }
            r = read_word();
        }
        if (ntags > 0) {
            sentences = sentences + 1;
            if (ntags > 12) {
                long_sentences = long_sentences + 1;
            }
            if (style_mode > 0) {
                style_check();
            }
            if (style_mode > 1) {
                deep_style();
            }
            if (match_sentence()) {
                accepted = accepted + 1;
                print_char('+');
            } else {
                rejected = rejected + 1;
                print_char('-');
            }
        }
        if (r == -1) { more = 0; }
    }
    print_char(10);
    print_str("sentences=");
    print_int(sentences);
    print_char(10);
    print_str("accepted=");
    print_int(accepted);
    print_char(10);
    print_str("unknown=");
    print_int(unknown_words);
    print_char(10);
    return 0;
}
)MC";

std::vector<int32_t>
chars(const std::string &text)
{
    std::vector<int32_t> out;
    for (char c : text)
        out.push_back(static_cast<unsigned char>(c));
    return out;
}

std::vector<int32_t>
benignText(Rng &rng)
{
    static const char *dets[] = {"the", "a"};
    static const char *nouns[] = {"dog", "cat", "man", "park"};
    static const char *verbs[] = {"sees", "walks", "likes"};
    static const char *adjs[] = {"big", "old"};
    static const char *preps[] = {"in", "on"};
    std::string text;
    int n = static_cast<int>(rng.nextRange(4, 10));
    for (int s = 0; s < n; ++s) {
        text += dets[rng.nextBelow(2)];
        text += ' ';
        if (rng.nextBool(0.4)) {
            text += adjs[rng.nextBelow(2)];
            text += ' ';
        }
        text += nouns[rng.nextBelow(4)];
        text += ' ';
        text += verbs[rng.nextBelow(3)];
        text += ' ';
        if (rng.nextBool(0.5)) {
            if (rng.nextBool(0.3)) {
                text += "quickly ";
            }
            text += dets[rng.nextBelow(2)];
            text += ' ';
            text += nouns[rng.nextBelow(4)];
            text += ' ';
        }
        if (rng.nextBool(0.3)) {
            text += preps[rng.nextBelow(2)];
            text += ' ';
            text += dets[rng.nextBelow(2)];
            text += ' ';
            text += nouns[rng.nextBelow(4)];
            text += ' ';
        }
        if (rng.nextBool(0.15)) {
            text += "zzyzx ";    // unknown word path
        }
        text += ".\n";
    }
    return chars(text);
}

} // namespace

Workload
makeParser()
{
    Workload w;
    w.name = "pe_parser";
    w.description = "SPEC2000 197.parser stand-in (grammar checker)";
    w.tools = "none";
    w.paperLoc = 10932;
    w.maxNtPathLength = 1000;
    w.source = source;

    Rng rng(0xbadc0dea);
    for (int i = 0; i < 50; ++i)
        w.benignInputs.push_back(benignText(rng));

    return w;
}

} // namespace pe::workloads
