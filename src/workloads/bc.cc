/**
 * @file
 * pe_bc: MiniC stand-in for bc-1.06 (paper Table 3: 17,042 LOC,
 * 2 memory bugs).
 *
 * A line-oriented infix calculator (shunting-yard with explicit
 * operator/value stacks, single-letter variables).
 *
 * Seeded memory bugs:
 *  - bc-m1 (PE-detectable): the deep-nesting handler writes a
 *    sentinel one word past op_stack (index 8 of an 8-word stack),
 *    landing in the guard zone; benign expressions never nest past 6
 *    so only an NT-Path reaches it.
 *  - bc-m2 (hot-entry-edge): mirroring the real bc-1.06 more_arrays
 *    overflow, the periodic rebalance (every 16th push) copies
 *    push_count/2 words into a 24-word scratch buffer; the entry
 *    edge `push_count % 16 == 0` is exercised intensively early (the
 *    paper's category 2), so its counter saturates long before any
 *    run pushes the 64+ values needed to overflow.
 *
 * The optional trace/history table pointers (enabled only by an '@'
 * line) supply the null-dereference false positives that the
 * blank-structure fix prunes (Table 5).
 */

#include "src/support/rng.hh"
#include "src/workloads/workloads.hh"

namespace pe::workloads
{

namespace
{

const char *source = R"MC(
// ---- pe_bc (bc-1.06 stand-in) ----

int val_stack[24];
int vsp = 0;
int op_stack[8];
int osp = 0;
int rebalance_tmp[24];

int vars[26];
int line_no = 0;
int nesting = 0;
int push_count = 0;
int errors = 0;
int cur = -2;           // current char; -2 = need read

int *trace_hook = 0;    // optional tracing (never enabled benignly)
int *hist_tab = 0;      // optional history table

int next_char() {
    cur = read_char();
    return cur;
}

int peek_char() {
    if (cur == -2) {
        next_char();
    }
    return cur;
}

int is_digit(int c) {
    if (c >= '0' && c <= '9') { return 1; }
    return 0;
}

int is_lower(int c) {
    if (c >= 'a' && c <= 'z') { return 1; }
    return 0;
}

// Seeded bug bc-m2: every 16th push triggers a rebalance that copies
// push_count/2 words into the 24-word scratch buffer with no bound
// check -- fine until a run has pushed 64 or more values.
int rebalance() {
    int i = 0;
    int limit = push_count / 2;
    while (i < limit) {
        rebalance_tmp[i] = val_stack[i % 24];
        i = i + 1;
    }
    return limit;
}

int push_val(int v) {
    if (vsp < 24) {
        val_stack[vsp] = v;
        vsp = vsp + 1;
    }
    push_count = push_count + 1;
    if (push_count % 16 == 0) {
        rebalance();
    }
    return vsp;
}

int pop_val() {
    if (vsp > 0) {
        vsp = vsp - 1;
        return val_stack[vsp];
    }
    errors = errors + 1;
    return 0;
}

int prec_of(int op) {
    if (op == '+') { return 1; }
    if (op == '-') { return 1; }
    if (op == '*') { return 2; }
    if (op == '/') { return 2; }
    if (op == '%') { return 2; }
    return 0;
}

int apply_op(int op) {
    int b = pop_val();
    int a = pop_val();
    int r = 0;
    if (op == '+') { r = a + b; }
    if (op == '-') { r = a - b; }
    if (op == '*') { r = a * b; }
    if (op == '/') {
        if (b == 0) {
            errors = errors + 1;
            r = 0;
        } else {
            r = a / b;
        }
    }
    if (op == '%') {
        if (b == 0) {
            errors = errors + 1;
            r = 0;
        } else {
            r = a % b;
        }
    }
    push_val(r);
    return r;
}

int push_op(int op) {
    while (osp > 0 && prec_of(op_stack[osp - 1]) >= prec_of(op)) {
        osp = osp - 1;
        apply_op(op_stack[osp]);
    }
    if (osp < 8) {
        op_stack[osp] = op;
        osp = osp + 1;
    }
    return osp;
}

// Seeded bug bc-m1: the deep-nesting handler plants a sentinel one
// word past the 8-entry operator stack, in the guard zone.
int deep_nesting_guard() {
    op_stack[8] = 0;
    return nesting;
}

int parse_primary() {
    int c = peek_char();
    int v = 0;
    if (is_digit(c)) {
        while (is_digit(peek_char())) {
            v = v * 10 + (cur - '0');
            next_char();
        }
        return v;
    }
    if (is_lower(c)) {
        v = vars[c - 'a'];
        next_char();
        return v;
    }
    if (c == '(') {
        nesting = nesting + 1;
        if (nesting > 6) {
            deep_nesting_guard();
        }
        next_char();
        v = parse_expr();
        if (peek_char() == ')') {
            nesting = nesting - 1;
            next_char();
        } else {
            errors = errors + 1;
        }
        return v;
    }
    errors = errors + 1;
    next_char();
    return 0;
}

// Parse the operator/operand tail of an expression whose first
// primary value is already known (needed for `a*b` lines, where the
// leading variable was consumed while checking for an assignment).
int parse_rest(int first) {
    int base_osp = osp;
    push_val(first);
    int c = peek_char();
    while (c == '+' || c == '-' || c == '*' || c == '/' || c == '%') {
        push_op(c);
        next_char();
        push_val(parse_primary());
        c = peek_char();
    }
    while (osp > base_osp) {
        osp = osp - 1;
        apply_op(op_stack[osp]);
    }
    return pop_val();
}

int parse_expr() {
    return parse_rest(parse_primary());
}

// ---- optional diagnostics (never enabled benignly) ----

int verbose = 0;
int depth_mark = -1;
int audit_buf[16];

// Classify a result for verbose mode; rich branch structure that only
// NT-Paths visit in monitored runs.
int describe_result(int v) {
    int kind = 0;
    if (v == 0) {
        kind = 1;
    } else if (v < 0) {
        kind = 2;
        if (v < -1000) {
            kind = 3;
        }
    } else if (v < 10) {
        kind = 4;
    } else if (v < 1000) {
        kind = 5;
        if (v % 2 == 0) {
            kind = 6;
        }
    } else {
        kind = 7;
        if (v % 100 == 0) {
            kind = 8;
        }
    }
    if (errors > 0 && kind > 4) {
        kind = kind + 10;
    }
    print_char('#');
    print_int(kind);
    print_char(10);
    return kind;
}

// Deep audit: nested rarely-true conditions; even NT-Paths cannot
// line both up, so this stays uncovered (like the deepest 10-30% of
// real code the paper discusses in Section 2).
// Recovery: scan both stacks and clear anomalies.  Reachable only by
// inputs that both raise the verbosity and accumulate six errors.
int repair_stacks() {
    int repaired = 0;
    int i = 0;
    while (i < 24) {
        if (val_stack[i] < -10000) {
            val_stack[i] = -10000;
            repaired = repaired + 1;
        } else if (val_stack[i] > 10000) {
            val_stack[i] = 10000;
            repaired = repaired + 1;
        }
        i = i + 1;
    }
    i = 0;
    while (i < 8) {
        int op = op_stack[i];
        if (op != '+' && op != '-' && op != '*' && op != '/' &&
            op != '%' && op != 0) {
            op_stack[i] = 0;
            repaired = repaired + 1;
        }
        i = i + 1;
    }
    if (vsp < 0) {
        vsp = 0;
        repaired = repaired + 1;
    } else if (vsp > 24) {
        vsp = 24;
        repaired = repaired + 1;
    }
    if (osp < 0) {
        osp = 0;
    } else if (osp > 8) {
        osp = 8;
    }
    if (repaired > 0 && nesting != 0) {
        nesting = 0;
    }
    return repaired;
}

int deep_audit() {
    int worst = 0;
    if (verbose > 2) {
        if (errors > 5) {
            int i = 0;
            while (i < 24) {
                if (val_stack[i] < worst) {
                    worst = val_stack[i];
                }
                i = i + 1;
            }
            repair_stacks();
            if (worst < -100) {
                print_int(worst);
            }
        }
    }
    return worst;
}

int audit_line() {
    // depth_mark is -1 unless a debugging session armed it; the
    // comparison is variable-vs-variable, so PathExpander has no fix
    // for it (Section 4.4) and an NT-Path enters with the benign -1,
    // indexing one below audit_buf -- a residual after-fix false
    // positive.
    if (depth_mark == line_no) {
        audit_buf[depth_mark % 16] = errors;
    }
    return 0;
}

int *scale_tab = 0;     // optional fixed-point scaling ('$' line)

int trace_value(int v) {
    int slot = v % 12;
    if (slot < 0) { slot = 0 - slot; }
    if (trace_hook != 0) {
        trace_hook[slot] = trace_hook[slot] + 1;
        if (trace_hook[0] > 100) {
            trace_hook[0] = 0;
        }
    }
    if (hist_tab != 0) {
        int prev = hist_tab[line_no % 10];
        if (prev == v) {
            errors = errors + 0;    // repeated result: no-op audit
        }
        hist_tab[line_no % 10] = v;
    }
    if (scale_tab != 0) {
        int s = scale_tab[line_no % 6];
        if (s > 0) {
            v = v * s;
        }
        scale_tab[line_no % 6] = s + 1;
    }
    return v;
}

int skip_line() {
    while (peek_char() != 10 && peek_char() != -1) {
        next_char();
    }
    return 0;
}

// One line: [a-z '='] expr '\n', or '@' to enable tracing.
int do_line() {
    int c = peek_char();
    int target = -1;
    int v = 0;
    if (c == -1) { return 0; }
    if (c == 10) {
        next_char();
        return 1;
    }
    line_no = line_no + 1;
    if (c == '@') {
        trace_hook = malloc(12);
        hist_tab = malloc(10);
        next_char();
        return 1;
    }
    if (c == '#') {
        verbose = verbose + 1;
        next_char();
        return 1;
    }
    if (c == '!') {
        depth_mark = line_no + 1;
        next_char();
        return 1;
    }
    if (c == '$') {
        scale_tab = malloc(6);
        next_char();
        return 1;
    }
    if (is_lower(c)) {
        int save = cur;
        next_char();
        if (peek_char() == '=') {
            target = save - 'a';
            next_char();
            v = parse_expr();
        } else {
            // Not an assignment: the letter was the first operand.
            v = parse_rest(vars[save - 'a']);
        }
    } else {
        v = parse_expr();
    }
    trace_value(v);
    audit_line();
    if (verbose > 0) {
        describe_result(v);
    }
    if (verbose > 2) {
        deep_audit();
    }
    if (target >= 0) {
        vars[target] = v;
    } else {
        print_int(v);
        print_char(10);
    }
    return 1;
}

int main() {
    while (do_line()) {
    }
    print_str("lines=");
    print_int(line_no);
    print_char(10);
    print_str("errors=");
    print_int(errors);
    print_char(10);
    return 0;
}
)MC";

std::vector<int32_t>
chars(const std::string &text)
{
    std::vector<int32_t> out;
    for (char c : text)
        out.push_back(static_cast<unsigned char>(c));
    return out;
}

/**
 * Production-rule based benign expression generator (the paper uses
 * such a generator for bc): nesting <= 1, and the per-run primary
 * budget keeps total pushes (primaries + operator results) below 64,
 * so both seeded bugs stay dormant on the taken path.
 */
std::vector<int32_t>
benignSession(Rng &rng)
{
    std::string text;
    int budget = 26;    // primaries; total pushes stay < 2*26 = 52
    int lines = static_cast<int>(rng.nextRange(3, 7));
    for (int l = 0; l < lines && budget > 3; ++l) {
        std::string expr;
        int terms = static_cast<int>(rng.nextRange(1, 3));
        for (int t = 0; t <= terms && budget > 1; ++t) {
            if (t > 0) {
                const char ops[] = {'+', '-', '*', '/'};
                expr += ops[rng.nextBelow(4)];
            }
            if (rng.nextBool(0.25)) {
                expr += '(';
                expr += std::to_string(rng.nextRange(1, 99));
                const char inner[] = {'+', '-', '*'};
                expr += inner[rng.nextBelow(3)];
                expr += std::to_string(rng.nextRange(1, 9));
                expr += ')';
                budget -= 2;
            } else if (t > 0 && rng.nextBool(0.3)) {
                expr += static_cast<char>('a' + rng.nextBelow(4));
            } else {
                expr += std::to_string(rng.nextRange(1, 999));
            }
            --budget;
        }
        if (rng.nextBool(0.4)) {
            text += static_cast<char>('a' + rng.nextBelow(4));
            text += '=';
        }
        text += expr;
        text += '\n';
    }
    return chars(text);
}

} // namespace

Workload
makeBc()
{
    Workload w;
    w.name = "pe_bc";
    w.description = "bc-1.06 stand-in (infix calculator)";
    w.tools = "memory";
    w.paperLoc = 17042;
    w.maxNtPathLength = 1000;
    w.source = source;

    Rng rng(0xbadc0de6);
    for (int i = 0; i < 50; ++i)
        w.benignInputs.push_back(benignSession(rng));

    {
        BugSpec b;
        b.id = "bc-m1";
        b.kind = BugSpec::Kind::Memory;
        b.funcName = "deep_nesting_guard";
        b.expectPeDetect = true;
        b.description = "sentinel write one past op_stack (guard "
                        "zone) on deep nesting";
        w.bugs.push_back(b);
    }
    {
        BugSpec b;
        b.id = "bc-m2";
        b.kind = BugSpec::Kind::Memory;
        b.funcName = "rebalance";
        b.expectPeDetect = false;
        b.missCategory = "hot-entry-edge";
        b.description = "rebalance copy overflows the scratch buffer "
                        "after 64 pushes; entry edge saturates early";
        w.bugs.push_back(b);
    }

    // bc-m1 trigger: nesting depth 7.
    w.triggerInputs["bc-m1"] = chars("(((((((1)))))))\n");
    {
        // bc-m2 trigger: a long sum pushes 70+ primaries (plus the
        // operator results) in one run.
        std::string t = "1";
        for (int i = 0; i < 72; ++i)
            t += "+1";
        t += "\n";
        w.triggerInputs["bc-m2"] = chars(t);
    }

    return w;
}

} // namespace pe::workloads
