/**
 * @file
 * pe_man: MiniC stand-in for man-1.5h1 (paper Table 3: 4,675 LOC,
 * 1 memory bug).
 *
 * A page formatter: reads lines, word-wraps them to the page width,
 * and handles a handful of roff-style directives.
 *
 * Seeded memory bug man-m1 — the paper's showcase for consistency
 * fixing (Table 5: the man bug is detected only *after* key-variable
 * fixing):
 *
 *  - format_special() is guarded by `if (fmt_spec != 0)`; benign
 *    inputs never install a format spec, so fmt_spec is null.
 *  - Without fixing, the NT-Path enters with fmt_spec == 0 and the
 *    first thing format_special does is read the spec's record
 *    header at fmt_spec[-2]; address -2 wraps out of the address
 *    space, the NT-Path crashes, and the bug below is never reached.
 *  - With fixing, the compiler's predicated fix points fmt_spec at
 *    the blank structure; the header read lands in the blank's guard
 *    zone (one of the few remaining after-fix false positives) and
 *    execution survives to the real bug: the header fill loop writes
 *    `page_width/4 + 1` words into the 12-word hdr_buf.
 */

#include "src/support/rng.hh"
#include "src/workloads/workloads.hh"

namespace pe::workloads
{

namespace
{

const char *source = R"MC(
// ---- pe_man (man-1.5h1 stand-in) ----

int line_buf[40];
int line_len = 0;
int out_col = 0;
int hdr_buf[12];

int page_width = 60;
int lines_in = 0;
int lines_out = 0;
int words_out = 0;
int bold_mode = 0;
int indent = 0;
int section_count = 0;

int *fmt_spec = 0;      // installed by the .F directive only
int *macro_tab = 0;     // installed by the .M directive only
int *hyphen_dict = 0;   // installed by the .D directive only
int *font_map = 0;      // installed by the .G directive only

int read_line() {
    int c = read_char();
    line_len = 0;
    if (c == -1) { return 0; }
    while (c != -1 && c != 10) {
        if (line_len < 39) {
            line_buf[line_len] = c;
            line_len = line_len + 1;
        }
        c = read_char();
    }
    line_buf[line_len] = 0;
    lines_in = lines_in + 1;
    return 1;
}

int read_spec_header(int *spec) {
    // The spec record carries a two-word header before the payload
    // pointer handed around (like a malloc header).
    return spec[0 - 2];
}

// Seeded bug man-m1: fills the section header rule using the page
// width with no bound check; hdr_buf holds only 12 words but
// page_width/4 + 1 == 16 get written, walking into the guard zone.
int format_special() {
    int kind = read_spec_header(fmt_spec);
    int j = 0;
    while (j <= page_width / 4) {
        hdr_buf[j] = '=';
        j = j + 1;
    }
    if (kind > 0) {
        indent = kind;
    }
    return j;
}

// ---- optional formatting passes (never enabled benignly) ----

int hyphen_mode = 0;
int justify_mode = 0;
int toc_mark = -1;
int toc_buf[10];

// Hyphenation scoring: rich branch structure visited only by
// NT-Paths during monitored runs.
int hyphen_score(int len) {
    int score = 0;
    if (len < 4) {
        score = 0;
    } else if (len < 7) {
        score = 1;
        if (line_buf[0] == 'a' || line_buf[0] == 'e') {
            score = 2;
        }
    } else if (len < 10) {
        score = 3;
        if (bold_mode == 1) {
            score = 4;
        }
    } else {
        score = 5;
        if (indent > 4) {
            score = 6;
        }
    }
    return score;
}

int justify_gaps(int words, int slack) {
    int per = 0;
    if (words > 1) {
        per = slack / (words - 1);
        if (per > 4) {
            per = 4;
        }
    } else if (slack > 8) {
        per = 2;
    }
    if (per < 0) {
        per = 0;
    }
    return per;
}

// Deep path: a justified, hyphenated, deeply indented line -- three
// rare conditions no single NT-Path flip can line up.
// Recovery: rebuild a line whose layout state went inconsistent.
// Reachable only when justification, hyphenation and a deep indent
// coincide -- a combination no single NT-Path flip produces.
int rebuild_layout() {
    int moved = 0;
    int write = 0;
    int i = 0;
    while (i < line_len) {
        int c = line_buf[i];
        if (c == 9) {
            c = 32;                 // tabs become spaces
            moved = moved + 1;
        }
        if (c == 32 && write == 0) {
            moved = moved + 1;      // drop leading blanks
        } else if (c == 32 && i + 1 < line_len &&
                   line_buf[i + 1] == 32) {
            moved = moved + 1;      // squeeze runs of blanks
        } else {
            line_buf[write] = c;
            write = write + 1;
        }
        i = i + 1;
    }
    if (write < line_len) {
        line_buf[write] = 0;
        line_len = write;
    }
    if (out_col > page_width) {
        out_col = page_width;
        moved = moved + 1;
    }
    if (indent > write) {
        indent = write / 2;
    }
    return moved;
}

int deep_layout() {
    int adjust = 0;
    if (justify_mode == 1) {
        if (hyphen_mode == 1) {
            if (indent > 8) {
                int i = 0;
                while (i < line_len) {
                    if (line_buf[i] == '-') {
                        adjust = adjust + 1;
                    }
                    i = i + 1;
                }
                adjust = adjust + rebuild_layout();
            }
        }
    }
    return adjust;
}

int toc_note() {
    // toc_mark is -1 unless the .T directive armed it; the comparison
    // is variable-vs-variable so no consistency fix applies, and an
    // NT-Path indexes one below toc_buf (a residual false positive).
    if (toc_mark == lines_in) {
        toc_buf[toc_mark % 10] = section_count;
    }
    return 0;
}

int expand_macros(int c) {
    if (macro_tab != 0) {
        int slot = c % 16;
        if (slot < 0) { slot = 0; }
        return macro_tab[slot];
    }
    return c;
}

int dict_lookup(int c0, int len) {
    int score = 0;
    if (hyphen_dict != 0) {
        int k = c0 % 6;
        if (k < 0) { k = 0; }
        score = hyphen_dict[k];
        if (hyphen_dict[k + 1] == len) {
            score = score + 2;
        }
        hyphen_dict[k] = len;
    }
    return score;
}

int map_font(int c) {
    if (font_map != 0) {
        int slot = c % 7;
        if (slot < 0) { slot = 0; }
        if (font_map[slot] != 0) {
            return font_map[slot];
        }
        font_map[slot] = c;
    }
    return c;
}

int emit_word(int start, int len) {
    int i = 0;
    if (out_col + len > page_width) {
        print_char(10);
        out_col = 0;
        lines_out = lines_out + 1;
    }
    if (out_col == 0) {
        while (i < indent) {
            print_char(32);
            out_col = out_col + 1;
            i = i + 1;
        }
    }
    dict_lookup(line_buf[start], len);
    i = 0;
    while (i < len) {
        int c = expand_macros(line_buf[start + i]);
        c = map_font(c);
        if (bold_mode == 1) {
            print_char(c);  // crude bold: double-strike
        }
        print_char(c);
        out_col = out_col + 1;
        i = i + 1;
    }
    print_char(32);
    out_col = out_col + 1;
    words_out = words_out + 1;
    return out_col;
}

int handle_directive() {
    int c = line_buf[1];
    if (c == 'B') {
        bold_mode = 1;
    }
    if (c == 'b') {
        bold_mode = 0;
    }
    if (c == 'I') {
        indent = indent + 2;
        if (indent > 12) { indent = 12; }
    }
    if (c == 'i') {
        indent = 0;
    }
    if (c == 'S') {
        section_count = section_count + 1;
        print_char(10);
        out_col = 0;
    }
    if (c == 'F') {
        fmt_spec = malloc(6) + 2;   // payload after a 2-word header
        fmt_spec[0 - 2] = 3;        // header: kind
        fmt_spec[0 - 1] = 6;        // header: size
    }
    if (c == 'M') {
        macro_tab = malloc(16);
    }
    if (c == 'H') {
        hyphen_mode = 1;
    }
    if (c == 'J') {
        justify_mode = 1;
    }
    if (c == 'T') {
        toc_mark = lines_in + 1;
    }
    if (c == 'D') {
        hyphen_dict = malloc(8);
    }
    if (c == 'G') {
        font_map = malloc(7);
    }
    return c;
}

int process_line() {
    int i = 0;
    int start = 0;

    if (line_len >= 2 && line_buf[0] == '.') {
        handle_directive();
        return 0;
    }
    if (fmt_spec != 0) {
        format_special();
    }
    toc_note();
    if (hyphen_mode == 1) {
        hyphen_score(line_len);
    }
    if (justify_mode == 1) {
        justify_gaps(line_len / 5, page_width - out_col);
        deep_layout();
    }
    while (i <= line_len) {
        int c = 0;
        if (i < line_len) { c = line_buf[i]; }
        if (c == 32 || c == 0) {
            if (i > start) {
                emit_word(start, i - start);
            }
            start = i + 1;
        }
        i = i + 1;
    }
    return 0;
}

int main() {
    while (read_line()) {
        process_line();
    }
    print_char(10);
    print_str("lines=");
    print_int(lines_in);
    print_char(10);
    print_str("words=");
    print_int(words_out);
    print_char(10);
    print_str("sections=");
    print_int(section_count);
    print_char(10);
    return 0;
}
)MC";

std::vector<int32_t>
chars(const std::string &text)
{
    std::vector<int32_t> out;
    for (char c : text)
        out.push_back(static_cast<unsigned char>(c));
    return out;
}

/** Benign pages: words plus .B/.b/.I/.i/.S directives, never .F/.M. */
std::vector<int32_t>
benignPage(Rng &rng)
{
    static const char *words[] = {
        "the", "command", "prints", "formatted", "manual", "pages",
        "with", "options", "described", "below", "output", "file",
    };
    static const char *directives[] = {".B", ".b", ".I", ".i", ".S"};
    std::string text;
    int lines = static_cast<int>(rng.nextRange(6, 16));
    for (int l = 0; l < lines; ++l) {
        if (rng.nextBool(0.25)) {
            text += directives[rng.nextBelow(5)];
            text += '\n';
            continue;
        }
        int n = static_cast<int>(rng.nextRange(3, 8));
        for (int i = 0; i < n; ++i) {
            text += words[rng.nextBelow(12)];
            text += ' ';
        }
        text += '\n';
    }
    return chars(text);
}

} // namespace

Workload
makeMan()
{
    Workload w;
    w.name = "pe_man";
    w.description = "man-1.5h1 stand-in (page formatter)";
    w.tools = "memory";
    w.paperLoc = 4675;
    w.maxNtPathLength = 1000;
    w.source = source;

    Rng rng(0xbadc0de7);
    for (int i = 0; i < 50; ++i)
        w.benignInputs.push_back(benignPage(rng));

    {
        BugSpec b;
        b.id = "man-m1";
        b.kind = BugSpec::Kind::Memory;
        b.funcName = "format_special";
        b.expectPeDetect = true;    // with variable fixing (default)
        b.description = "header rule fill overruns hdr_buf; detected "
                        "only with the blank-structure pointer fix";
        w.bugs.push_back(b);
    }

    // Trigger: install a format spec, then format a text line.
    w.triggerInputs["man-m1"] = chars(".F\nhello world\n");

    return w;
}

} // namespace pe::workloads
