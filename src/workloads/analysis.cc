/**
 * @file
 * Report-to-bug matching.
 */

#include "src/workloads/analysis.hh"

namespace pe::workloads
{

namespace
{

bool
matches(const BugSpec &bug, const detect::Report &report,
        const isa::Program &program)
{
    if (bug.kind == BugSpec::Kind::Assertion) {
        return report.kind == detect::ReportKind::AssertFail &&
               report.assertId == bug.assertId;
    }
    if (report.kind == detect::ReportKind::AssertFail)
        return false;
    if (program.funcOf(report.pc) != bug.funcName)
        return false;
    if (bug.lineLo == 0 && bug.lineHi == 0)
        return true;
    int line = program.locOf(report.pc).line;
    return line >= bug.lineLo && line <= bug.lineHi;
}

} // namespace

DetectionAnalysis
analyzeReports(const Workload &workload, const isa::Program &program,
               const detect::MonitorArea &monitor, bool memoryTools)
{
    DetectionAnalysis out;
    auto tested = memoryTools ? BugSpec::Kind::Memory
                              : BugSpec::Kind::Assertion;

    std::vector<detect::Report> distinct = monitor.distinctReports();

    for (const auto &bug : workload.bugs) {
        if (bug.kind != tested)
            continue;
        BugOutcome outcome;
        outcome.bug = &bug;
        for (const auto &r : distinct) {
            if (matches(bug, r, program)) {
                outcome.detected = true;
                break;
            }
        }
        if (outcome.detected)
            ++out.numDetected;
        out.outcomes.push_back(outcome);
    }

    for (const auto &r : distinct) {
        bool isBug = false;
        for (const auto &bug : workload.bugs) {
            if (matches(bug, r, program)) {
                isBug = true;
                break;
            }
        }
        if (!isBug)
            ++out.falsePositiveSites;
    }
    return out;
}

} // namespace pe::workloads
