/**
 * @file
 * print_tokens: MiniC re-creation of the Siemens print_tokens
 * benchmark (paper Table 3: 726 LOC, 7 seeded bug versions).
 *
 * A stream tokenizer that prints one classified token per line.
 * Seeded assertion bugs: 101-105 PE-detectable (invariant checks on
 * cold branches violated whenever the branch body runs), 106
 * special-input-only (nested cold conditions), 107
 * inconsistency-masked (correlated variable not fixed).
 */

#include "src/support/rng.hh"
#include "src/workloads/workloads.hh"

namespace pe::workloads
{

namespace
{

const char *source = R"MC(
// ---- print_tokens (Siemens-suite re-creation) ----

int buf[12];
int buf_len = 0;
int pushback = -2;          // -2: empty

int nesting = 0;
int total = 0;
int seen_any = 0;
int numlen = 0;
int ovf = 0;
int dup_ops = 0;
int reported = 0;
int err_flag = 0;
int mode = 0;
int width = 4;
int flush_req = 0;
int flush_data = 0;
int last_was_op = 0;

int next_char() {
    int c = 0;
    if (pushback != -2) {
        c = pushback;
        pushback = -2;
        return c;
    }
    return read_char();
}

int is_ws(int c) {
    if (c == 32) { return 1; }
    if (c == 10) { return 1; }
    if (c == 9) { return 1; }
    return 0;
}

int is_dig(int c) {
    if (c >= '0') {
        if (c <= '9') { return 1; }
    }
    return 0;
}

int is_letter(int c) {
    if (c >= 'a' && c <= 'z') { return 1; }
    if (c >= 'A' && c <= 'Z') { return 1; }
    return 0;
}

int is_op(int c) {
    if (c == '+') { return 1; }
    if (c == '-') { return 1; }
    if (c == '*') { return 1; }
    if (c == '/') { return 1; }
    return 0;
}

// Token kinds: 1 number, 2 identifier, 3 operator, 4 open, 5 close,
// 6 error, 7 directive.
int get_token() {
    int c = next_char();
    while (c != -1 && is_ws(c)) {
        c = next_char();
    }
    if (c == -1) { return 0; }
    buf_len = 0;

    if (is_dig(c)) {
        numlen = 0;
        while (c != -1 && is_dig(c)) {
            if (buf_len < 11) {
                buf[buf_len] = c;
                buf_len = buf_len + 1;
            }
            numlen = numlen + 1;
            c = next_char();
        }
        pushback = c;
        if (numlen > 5) {
            // Seeded bug 103: long numbers must raise the overflow
            // flag; the seeded fault forgot to set it.
            assert(ovf == 1, 103);
        }
        return 1;
    }

    if (is_letter(c)) {
        while (c != -1 && (is_letter(c) || is_dig(c))) {
            if (buf_len < 11) {
                buf[buf_len] = c;
                buf_len = buf_len + 1;
            }
            c = next_char();
        }
        pushback = c;
        return 2;
    }

    if (is_op(c)) {
        buf[0] = c;
        buf_len = 1;
        if (last_was_op == 1) {
            dup_ops = dup_ops + 1;
        }
        if (dup_ops > 3) {
            // Seeded bug 104: runs of duplicate operators must have
            // been reported; the fault dropped the report call.
            assert(reported > 0, 104);
            dup_ops = 0;
        }
        return 3;
    }

    if (c == '(') { return 4; }
    if (c == ')') { return 5; }

    if (c == '@') {
        c = next_char();
        if (is_dig(c)) {
            mode = c - '0';
        }
        return 7;
    }

    err_flag = err_flag + 1;
    return 6;
}

int handle_nesting(int kind) {
    if (kind == 4) {
        nesting = nesting + 1;
    }
    if (kind == 5) {
        nesting = nesting - 1;
        if (nesting < 0) {
            // Seeded bug 105: underflow recovery must record an
            // error first; the fault silently resets the tracker.
            assert(err_flag > 0, 105);
            nesting = 0;
        }
    }
    if (nesting > 4) {
        // Seeded bug 101: deep nesting should reset the tracker; the
        // fault only decrements it.
        nesting = nesting - 1;
        assert(nesting == 0, 101);
    }
    return nesting;
}

// ---- diagnostics mode (directive @8 / @9; never enabled benignly) --

int diag_level = 0;
int kind_hist[8];

int classify_run(int kind, int run) {
    int c = 0;
    if (run < 2) {
        c = 1;
    } else if (run < 5) {
        c = 2;
        if (kind == 3) {
            c = 3;
        }
    } else {
        c = 4;
        if (kind == 1) {
            c = 5;
        } else if (kind == 2) {
            c = 6;
        }
    }
    if (nesting > 2 && c > 2) {
        c = c + 10;
    }
    return c;
}

int histogram_note(int kind) {
    if (kind >= 0 && kind < 8) {
        kind_hist[kind] = kind_hist[kind] + 1;
    }
    int peak = 0;
    int i = 1;
    while (i < 8) {
        if (kind_hist[i] > kind_hist[peak]) {
            peak = i;
        }
        i = i + 1;
    }
    return peak;
}

// Recovery: recalibrate the histogram after repeated errors.
// Reachable only with diagnostics armed twice and four-plus errors.
int recalibrate() {
    int dropped = 0;
    int total_h = 0;
    int i = 0;
    while (i < 8) {
        total_h = total_h + kind_hist[i];
        i = i + 1;
    }
    i = 0;
    while (i < 8) {
        if (kind_hist[i] * 8 > total_h * 3) {
            kind_hist[i] = total_h * 3 / 8;     // cap dominant kinds
            dropped = dropped + 1;
        } else if (kind_hist[i] == 1) {
            kind_hist[i] = 0;                   // drop singletons
            dropped = dropped + 1;
        }
        i = i + 1;
    }
    if (dup_ops > 0) {
        dup_ops = dup_ops - 1;
    }
    if (nesting > 2) {
        nesting = 2;
        dropped = dropped + 1;
    }
    if (dropped > 6) {
        dropped = 6;
    }
    return dropped;
}

int deep_diag() {
    int v = 0;
    // Two nested rare conditions: beyond a single NT-Path flip.
    if (diag_level > 1) {
        if (err_flag > 3) {
            int i = 0;
            while (i < 8) {
                if (kind_hist[i] == 0) {
                    v = v + 1;
                }
                i = i + 1;
            }
            v = v + recalibrate();
            if (v > 5) {
                v = 5;
            }
        }
    }
    return v;
}

int diag_token(int kind) {
    if (diag_level > 0) {
        classify_run(kind, dup_ops);
        histogram_note(kind);
    }
    if (diag_level > 1) {
        deep_diag();
    }
    return kind;
}

int print_kind(int kind) {
    print_str("tok:");
    print_int(kind);
    print_char(10);
    return 0;
}

int handle_directive() {
    if (mode == 8) {
        diag_level = 1;
    }
    if (mode == 9) {
        diag_level = 2;
    }
    if (mode == 2) {
        if (width > 9) {
            // Seeded bug 106 (special input): wide formatting in
            // mode 2 hits the faulty layout code.
            assert(width < 12, 106);
        }
        width = width + 1;
    }
    if (mode == 5) {
        // Seeded bug 102: mode 5 is only legal after an error; the
        // fault allows it unconditionally.
        assert(err_flag > 0, 102);
        mode = 0;
    }
    return mode;
}

int main() {
    int kind = get_token();
    while (kind != 0) {
        total = total + 1;
        seen_any = 1;
        handle_nesting(kind);
        if (kind == 3) {
            last_was_op = 1;
        } else {
            last_was_op = 0;
        }
        handle_directive();
        if (flush_req == 1) {
            // Seeded bug 107 (inconsistency-masked): a real run with
            // flush_req == 1 also carries flush_data != 0; the fault
            // mishandles exactly that pairing.  On an NT-Path
            // flush_req is fixed to 1 but flush_data keeps its benign
            // value 0, masking the violation.
            assert(flush_data == 0, 107);
            flush_req = 0;
        }
        if (kind == 6) {
            flush_req = 1;
            flush_data = total;
        }
        diag_token(kind);
        print_kind(kind);
        kind = get_token();
    }
    if (total == 0) {
        print_str("empty\n");
    }
    print_str("total=");
    print_int(total);
    print_char(10);
    return 0;
}
)MC";

std::vector<int32_t>
chars(const std::string &text)
{
    std::vector<int32_t> out;
    for (char c : text)
        out.push_back(static_cast<unsigned char>(c));
    return out;
}

/**
 * Benign streams: numbers up to 5 digits, identifiers, single
 * operators (never more than 3 duplicate pairs), shallow balanced
 * parens, no '@' directives, no illegal characters.
 */
std::vector<int32_t>
benignStream(Rng &rng)
{
    static const char *atoms[] = {
        "12", "345", "7", "90", "4711", "x", "count", "sum", "tmp",
        "alpha", "idx",
    };
    static const char ops[] = {'+', '-', '*', '/'};
    std::string text;
    int n = static_cast<int>(rng.nextRange(10, 70));
    bool last_op = true;    // start with an atom
    int depth = 0;
    for (int i = 0; i < n; ++i) {
        double roll = rng.nextDouble();
        if (roll < 0.12 && depth < 3) {
            text += "( ";
            ++depth;
            last_op = true;
        } else if (roll < 0.2 && depth > 0) {
            text += ") ";
            --depth;
            last_op = false;
        } else if (roll < 0.55 && !last_op) {
            text += ops[rng.nextBelow(4)];
            text += ' ';
            last_op = true;
        } else {
            text += atoms[rng.nextBelow(11)];
            text += rng.nextBool(0.2) ? '\n' : ' ';
            last_op = false;
        }
    }
    while (depth-- > 0)
        text += ") ";
    return chars(text);
}

} // namespace

Workload
makePrintTokens()
{
    Workload w;
    w.name = "print_tokens";
    w.description = "Siemens print_tokens re-creation (tokenizer)";
    w.tools = "assert";
    w.paperLoc = 726;
    w.maxNtPathLength = 200;
    w.source = source;

    Rng rng(0xbadc0de1);
    for (int i = 0; i < 50; ++i)
        w.benignInputs.push_back(benignStream(rng));

    auto assertBug = [&w](int id, bool detect, const std::string &cat,
                          const std::string &desc) {
        BugSpec b;
        b.id = "pt-a" + std::to_string(id);
        b.kind = BugSpec::Kind::Assertion;
        b.assertId = id;
        b.expectPeDetect = detect;
        b.missCategory = cat;
        b.description = desc;
        w.bugs.push_back(b);
    };
    assertBug(101, true, "", "deep nesting only decremented");
    assertBug(102, true, "", "mode 5 legal without an error");
    assertBug(103, true, "", "number overflow flag never set");
    assertBug(104, true, "", "duplicate operators never reported");
    assertBug(105, true, "", "paren underflow recovery drops the error");
    assertBug(106, false, "special-input",
              "nested cold branch (mode 2 with wide layout)");
    assertBug(107, false, "inconsistency",
              "flush_data correlated with the fixed variable");

    w.triggerInputs["pt-a101"] = chars("( ( ( ( ( ( x");
    w.triggerInputs["pt-a102"] = chars("@5 x");
    w.triggerInputs["pt-a103"] = chars("1234567 x");
    w.triggerInputs["pt-a104"] = chars("+ + + + + + + + + + x");
    w.triggerInputs["pt-a105"] = chars(") x");
    {
        // Mode 2 repeatedly widens the layout until the faulty wide
        // path fires (width reaches 12 on the 9th directive).
        std::string t;
        for (int i = 0; i < 10; ++i)
            t += "@2 ";
        t += "x";
        w.triggerInputs["pt-a106"] = chars(t);
    }
    w.triggerInputs["pt-a107"] = chars("? x y");

    return w;
}

} // namespace pe::workloads
