/**
 * @file
 * Small string utilities shared across the repository.
 */

#ifndef PE_SUPPORT_STRUTIL_HH
#define PE_SUPPORT_STRUTIL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pe
{

/** Split @p s on @p sep; empty fields are kept. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** True when @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Join @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Render a double with @p digits fractional digits. */
std::string fmtDouble(double v, int digits = 2);

/** Render a fraction as a percentage string, e.g. "42.3%". */
std::string fmtPercent(double fraction, int digits = 1);

/** Render @p v as a fixed-width hex literal, e.g. "0x00ff00ff00ff00ff". */
std::string fmtHex(uint64_t v);

/** Left-pad @p s with spaces to at least @p width characters. */
std::string padLeft(const std::string &s, size_t width);

/** Right-pad @p s with spaces to at least @p width characters. */
std::string padRight(const std::string &s, size_t width);

} // namespace pe

#endif // PE_SUPPORT_STRUTIL_HH
