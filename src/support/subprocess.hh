/**
 * @file
 * Child-process spawning with a socketpair transport.
 *
 * The fleet's workers are real OS processes, not threads: a worker
 * owns its whole simulator state (engine, corpus, RNG streams) with
 * no sharing, can be killed -9 without corrupting the coordinator,
 * and is the shape a multi-machine deployment would take (the
 * socketpair fd is the only channel, so swapping it for a TCP socket
 * changes nothing above this layer).
 *
 * spawnChild() forks and runs a caller-supplied function in the
 * child over one end of a SOCK_STREAM socketpair.  Fork-without-exec
 * keeps the child self-contained: it inherits the parent's compiled
 * program image and options by memory, so nothing but deltas ever
 * needs to cross the pipe.  The caller must spawn before creating
 * threads it cannot account for (campaign pools are joined between
 * batches, so fleet startup is a safe fork point).
 *
 * The child never returns: it runs the function, flushes nothing it
 * does not own, and leaves via _exit() so inherited stdio buffers
 * and atexit handlers are not replayed.
 */

#ifndef PE_SUPPORT_SUBPROCESS_HH
#define PE_SUPPORT_SUBPROCESS_HH

#include <functional>

#include <sys/types.h>

namespace pe::proc
{

/** A live child process and the parent's end of its socketpair. */
class ChildProcess
{
  public:
    ChildProcess() = default;
    ChildProcess(pid_t pid, int fd) : childPid(pid), parentFd(fd) {}

    ChildProcess(const ChildProcess &) = delete;
    ChildProcess &operator=(const ChildProcess &) = delete;
    ChildProcess(ChildProcess &&other) noexcept;
    ChildProcess &operator=(ChildProcess &&other) noexcept;

    /** Reaps (blocking) and closes if still live. */
    ~ChildProcess();

    pid_t pid() const { return childPid; }
    int fd() const { return parentFd; }
    bool valid() const { return childPid > 0; }

    /** Close the parent's socket end (the child sees EOF). */
    void closeFd();

    /**
     * Blocking waitpid.  Returns the exit status (>= 0) or the
     * negated terminating signal; repeated calls return the first
     * result.  Closes the fd first so a child blocked on a read
     * wakes up instead of deadlocking the reap.
     */
    int wait();

    /**
     * Bounded reap: poll waitpid(WNOHANG) for up to @p timeoutMs.
     * Returns true once the child is reaped (wait() then returns the
     * stored code immediately); false if it is still running when the
     * timeout expires — the caller decides whether to escalate.
     * Does NOT close the fd; pair with closeFd() for a clean EOF
     * shutdown before the deadline starts.
     */
    bool waitFor(int timeoutMs);

    /** Send @p sig; no-op once reaped. */
    void kill(int sig);

  private:
    pid_t childPid = -1;
    int parentFd = -1;
    bool reaped = false;
    int exitCode = 0;
};

/**
 * Fork a child running `childMain(fd)` over a socketpair.  Flushes
 * stdout/stderr before forking so buffered output is not duplicated.
 * In the child, exceptions escaping childMain print to stderr and
 * _exit(1); a normal return _exit()s with the returned code.
 * Throws FatalError if the socketpair or fork syscall fails.
 */
ChildProcess spawnChild(const std::function<int(int fd)> &childMain);

} // namespace pe::proc

#endif // PE_SUPPORT_SUBPROCESS_HH
