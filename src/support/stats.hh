/**
 * @file
 * Lightweight statistics helpers: scalar summaries and cumulative
 * distribution functions (used for the Figure-3 latency CDFs).
 */

#ifndef PE_SUPPORT_STATS_HH
#define PE_SUPPORT_STATS_HH

#include <cstdint>
#include <vector>

namespace pe
{

/** Streaming summary of a scalar sample set. */
class Summary
{
  public:
    void add(double v);

    uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const;
    double min() const;
    double max() const;

  private:
    uint64_t n = 0;
    double total = 0;
    double lo = 0;
    double hi = 0;
};

/**
 * Empirical cumulative distribution over integer samples.
 *
 * Used to reproduce the paper's Figure 3: "the percentage of NT-Paths
 * that crash or reach an unsafe event before executing a given number
 * of instructions."
 */
class Cdf
{
  public:
    void add(uint64_t v);

    /** Fraction of samples with value <= x; 0 when empty. */
    double fractionAtOrBelow(uint64_t x) const;

    /** Fraction of samples with value < x; 0 when empty. */
    double fractionBelow(uint64_t x) const;

    uint64_t count() const { return samples.size(); }

    /** Smallest value v such that fractionAtOrBelow(v) >= q. */
    uint64_t quantile(double q) const;

  private:
    void ensureSorted() const;

    mutable std::vector<uint64_t> samples;
    mutable bool sorted = true;
};

} // namespace pe

#endif // PE_SUPPORT_STATS_HH
