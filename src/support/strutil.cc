/**
 * @file
 * String utility implementations.
 */

#include "src/support/strutil.hh"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace pe
{

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
fmtDouble(double v, int digits)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(digits);
    oss << v;
    return oss.str();
}

std::string
fmtPercent(double fraction, int digits)
{
    return fmtDouble(fraction * 100.0, digits) + "%";
}

std::string
fmtHex(uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
padLeft(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

} // namespace pe
