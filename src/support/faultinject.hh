/**
 * @file
 * Deterministic fault injection for host-side robustness testing.
 *
 * PathExpander's value proposition is surviving faults the taken path
 * never sees; the harness around it must be just as hard to kill.
 * Every recovery path added to the campaign runner and the explorer
 * (failure policies, retries, checkpoint/resume) is exercised by
 * *armed* faults rather than trusted: code declares named sites
 * (`fault::site("campaign.run_job")`) and a test or CI run arms a
 * `FaultPlan` — "throw FatalError on hit N of site S", "simulate
 * bad_alloc", "stall M ms" — against them.
 *
 * Cost when nothing is armed: one relaxed atomic load and a
 * predictable branch per site hit.  Sites never pay for string
 * comparison, locking, or counting unless a plan is armed.
 *
 * Site naming convention: `<area>.<operation>`, lower-case, dots as
 * separators — `campaign.run_job`, `explore.batch_merge`,
 * `explore.checkpoint_write`, `fleet.checkpoint_write`,
 * `objfile.write`.
 *
 * Plans can be armed from the environment for CLI/CI use:
 * `PE_FAULT_PLAN` holds a ';'-separated list of plan specs (see
 * `parsePlan`), armed once at process start.
 */

#ifndef PE_SUPPORT_FAULTINJECT_HH
#define PE_SUPPORT_FAULTINJECT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pe::fault
{

/** What an armed plan does when it fires. */
enum class FaultKind : uint8_t
{
    Throw,      //!< throw pe::FatalError (a failing job)
    BadAlloc,   //!< throw std::bad_alloc (resource exhaustion)
    Stall,      //!< sleep stallMs (a slow job, for watchdog paths)
};

const char *faultKindName(FaultKind kind);

/** One armed fault: which site, which hits, what happens. */
struct FaultPlan
{
    /** Site name the plan matches (exact). */
    std::string site;

    /** First firing hit of the site, 1-based. */
    uint64_t hit = 1;

    /** Consecutive hits that fire from `hit` on; 0 = every later hit. */
    uint64_t count = 1;

    FaultKind kind = FaultKind::Throw;

    /** Stall duration for FaultKind::Stall, in milliseconds. */
    uint32_t stallMs = 1;

    /** Message carried by the injected FatalError. */
    std::string message = "injected fault";

    /**
     * Canonical spec string: `site=S,hit=N,count=M,kind=K,
     * stall_ms=T,msg=...`.  `parsePlan(p.str()) == p` for every plan.
     */
    std::string str() const;

    bool operator==(const FaultPlan &other) const = default;
};

/**
 * Parse one plan spec: comma-separated `key=value` pairs with keys
 * `site` (required), `hit`, `count`, `kind` (`throw`, `bad_alloc`,
 * `stall`), `stall_ms`, `msg`.  Messages may not contain ',' or ';'.
 * Throws FatalError on malformed specs.
 */
FaultPlan parsePlan(const std::string &spec);

/** Parse a ';'-separated plan list (the PE_FAULT_PLAN format). */
std::vector<FaultPlan> parsePlanList(const std::string &specs);

/**
 * Arm @p plans, replacing whatever was armed, and reset every site's
 * hit counter so `hit` is counted from the moment of arming.
 */
void armPlans(std::vector<FaultPlan> plans);

/** Disarm everything (sites return to the one-load fast path). */
void disarmAll();

/** Currently armed plans (empty when disarmed). */
std::vector<FaultPlan> armedPlans();

/** Hits of @p name since the last armPlans(); 0 while disarmed. */
uint64_t siteHits(const std::string &name);

namespace detail
{

/** Number of armed plans; the site() fast-path gate. */
extern std::atomic<uint32_t> armedCount;

void siteSlow(const char *name);

} // namespace detail

/**
 * Declare a fault-injection site.  With no plan armed this is one
 * relaxed load; with plans armed the hit is counted and a matching
 * plan fires (throws or stalls) on its configured hits.
 */
inline void
site(const char *name)
{
    if (detail::armedCount.load(std::memory_order_relaxed) == 0)
        return;
    detail::siteSlow(name);
}

/**
 * RAII plan arming for tests: arms on construction, restores the
 * previously armed set (e.g. PE_FAULT_PLAN plans) on destruction.
 */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const FaultPlan &plan);
    explicit ScopedFaultPlan(std::vector<FaultPlan> plans);
    ~ScopedFaultPlan();

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;

  private:
    std::vector<FaultPlan> saved;
};

} // namespace pe::fault

#endif // PE_SUPPORT_FAULTINJECT_HH
