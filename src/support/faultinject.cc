/**
 * @file
 * Fault-injection registry implementation.
 */

#include "src/support/faultinject.hh"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <thread>

#include "src/support/status.hh"

namespace pe::fault
{

namespace detail
{

std::atomic<uint32_t> armedCount{0};

} // namespace detail

namespace
{

std::mutex registryMtx;
std::vector<FaultPlan> plans;               //!< guarded by registryMtx
std::map<std::string, uint64_t> hitCounts;  //!< guarded by registryMtx

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Throw: return "throw";
      case FaultKind::BadAlloc: return "bad_alloc";
      case FaultKind::Stall: return "stall";
    }
    return "?";
}

std::string
FaultPlan::str() const
{
    std::string s = "site=" + site;
    s += ",hit=" + std::to_string(hit);
    s += ",count=" + std::to_string(count);
    s += std::string(",kind=") + faultKindName(kind);
    s += ",stall_ms=" + std::to_string(stallMs);
    s += ",msg=" + message;
    return s;
}

namespace
{

uint64_t
parseU64(const std::string &value, const char *key)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        pe_fatal("fault plan: bad ", key, " value '", value, "'");
    return v;
}

} // namespace

FaultPlan
parsePlan(const std::string &spec)
{
    FaultPlan plan;
    bool haveSite = false;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string pair = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty())
            continue;
        size_t eq = pair.find('=');
        if (eq == std::string::npos)
            pe_fatal("fault plan: expected key=value, got '", pair, "'");
        std::string key = pair.substr(0, eq);
        std::string value = pair.substr(eq + 1);
        if (key == "site") {
            plan.site = value;
            haveSite = true;
        } else if (key == "hit") {
            plan.hit = parseU64(value, "hit");
            if (plan.hit == 0)
                pe_fatal("fault plan: hit is 1-based, got 0");
        } else if (key == "count") {
            plan.count = parseU64(value, "count");
        } else if (key == "kind") {
            if (value == "throw")
                plan.kind = FaultKind::Throw;
            else if (value == "bad_alloc")
                plan.kind = FaultKind::BadAlloc;
            else if (value == "stall")
                plan.kind = FaultKind::Stall;
            else
                pe_fatal("fault plan: unknown kind '", value, "'");
        } else if (key == "stall_ms") {
            plan.stallMs =
                static_cast<uint32_t>(parseU64(value, "stall_ms"));
        } else if (key == "msg") {
            plan.message = value;
        } else {
            pe_fatal("fault plan: unknown key '", key, "'");
        }
    }
    if (!haveSite || plan.site.empty())
        pe_fatal("fault plan: missing site= in '", spec, "'");
    return plan;
}

std::vector<FaultPlan>
parsePlanList(const std::string &specs)
{
    std::vector<FaultPlan> out;
    size_t pos = 0;
    while (pos <= specs.size()) {
        size_t semi = specs.find(';', pos);
        if (semi == std::string::npos)
            semi = specs.size();
        std::string one = specs.substr(pos, semi - pos);
        if (!one.empty())
            out.push_back(parsePlan(one));
        pos = semi + 1;
    }
    return out;
}

void
armPlans(std::vector<FaultPlan> newPlans)
{
    std::lock_guard lock(registryMtx);
    plans = std::move(newPlans);
    hitCounts.clear();
    detail::armedCount.store(static_cast<uint32_t>(plans.size()),
                             std::memory_order_relaxed);
}

void
disarmAll()
{
    armPlans({});
}

std::vector<FaultPlan>
armedPlans()
{
    std::lock_guard lock(registryMtx);
    return plans;
}

uint64_t
siteHits(const std::string &name)
{
    std::lock_guard lock(registryMtx);
    auto it = hitCounts.find(name);
    return it == hitCounts.end() ? 0 : it->second;
}

namespace detail
{

void
siteSlow(const char *name)
{
    FaultKind kind = FaultKind::Throw;
    uint32_t stallMs = 0;
    std::string message;
    uint64_t firedHit = 0;
    {
        std::lock_guard lock(registryMtx);
        if (plans.empty())
            return;     // disarmed between the fast path and here
        uint64_t h = ++hitCounts[name];
        for (const FaultPlan &plan : plans) {
            if (plan.site != name || h < plan.hit)
                continue;
            if (plan.count != 0 && h >= plan.hit + plan.count)
                continue;
            kind = plan.kind;
            stallMs = plan.stallMs;
            message = plan.message;
            firedHit = h;
            break;
        }
    }
    if (!firedHit)
        return;
    switch (kind) {
      case FaultKind::Throw:
        throw FatalError(message + " (injected at site '" +
                         std::string(name) + "' hit " +
                         std::to_string(firedHit) + ")");
      case FaultKind::BadAlloc:
        throw std::bad_alloc();
      case FaultKind::Stall:
        std::this_thread::sleep_for(std::chrono::milliseconds(stallMs));
        break;
    }
}

} // namespace detail

ScopedFaultPlan::ScopedFaultPlan(const FaultPlan &plan)
    : ScopedFaultPlan(std::vector<FaultPlan>{plan})
{}

ScopedFaultPlan::ScopedFaultPlan(std::vector<FaultPlan> newPlans)
    : saved(armedPlans())
{
    armPlans(std::move(newPlans));
}

ScopedFaultPlan::~ScopedFaultPlan()
{
    armPlans(std::move(saved));
}

namespace
{

/** Arm PE_FAULT_PLAN at process start; malformed specs warn, not die. */
struct EnvArm
{
    EnvArm()
    {
        const char *env = std::getenv("PE_FAULT_PLAN");
        if (!env || !*env)
            return;
        try {
            armPlans(parsePlanList(env));
        } catch (const FatalError &err) {
            warn("PE_FAULT_PLAN ignored: ", err.what());
        }
    }
} envArm;

} // namespace

} // namespace pe::fault
