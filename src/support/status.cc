/**
 * @file
 * Implementation of the status helpers.
 */

#include "src/support/status.hh"

#include <cstdlib>
#include <iostream>

namespace pe
{

namespace
{
bool quietFlag = false;
} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw FatalError(concat("fatal: ", msg, " @ ", file, ":", line));
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace pe
