/**
 * @file
 * Status and error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated: a simulator bug.
 *            Aborts so a debugger or core dump can inspect the state.
 * fatal()  - the simulation cannot continue because of a user-level
 *            problem (bad configuration, malformed workload source).
 *            Exits with status 1.
 * warn()   - something is suspicious but the run can continue.
 * inform() - plain status output for the user.
 */

#ifndef PE_SUPPORT_STATUS_HH
#define PE_SUPPORT_STATUS_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace pe
{

/** Exception thrown by fatal() so that tests can observe user errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{

/** Concatenate a parameter pack into one string via an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort with a simulator-bug message. */
template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line,
                      detail::concat(std::forward<Args>(args)...));
}

/** Throw a FatalError describing a user-level problem. */
template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, Args &&...args)
{
    detail::fatalImpl(file, line,
                      detail::concat(std::forward<Args>(args)...));
}

/** Print a warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print an informational message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Globally silence warn()/inform() (used by benches for clean tables). */
void setQuiet(bool quiet);
bool quiet();

#define pe_panic(...) ::pe::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define pe_fatal(...) ::pe::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Assert a simulator invariant; compiled in all build types. */
#define pe_assert(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::pe::panicAt(__FILE__, __LINE__, "assertion failed: ",       \
                          #cond, " ", ##__VA_ARGS__);                     \
        }                                                                 \
    } while (0)

} // namespace pe

#endif // PE_SUPPORT_STATUS_HH
