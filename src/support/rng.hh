/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in the repository that needs randomness (workload input
 * generators, the annealer in pe_vpr, parameter sweeps) draws from this
 * SplitMix64-based generator so runs are reproducible bit-for-bit.
 */

#ifndef PE_SUPPORT_RNG_HH
#define PE_SUPPORT_RNG_HH

#include <cstdint>

namespace pe
{

/**
 * SplitMix64 PRNG.  Small state, excellent statistical quality for
 * simulation purposes, and trivially seedable.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Next raw 64-bit value. */
    uint64_t next64();

    /** Uniform value in [0, bound).  bound must be > 0. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p = 0.5);

    /**
     * Derive an independent child generator without advancing this
     * one: the same (state, salt) pair always yields the same child.
     * Used to give each component of a composite process (mutator,
     * scheduler, per-batch draws) its own stream so adding draws to
     * one component cannot perturb the sequence seen by another.
     */
    Rng fork(uint64_t salt) const;

    /**
     * Checkpoint support: the raw SplitMix64 state word.  A stream
     * restored with setRawState continues bit-identically to one
     * that was never interrupted.
     */
    uint64_t rawState() const { return state; }
    void setRawState(uint64_t s) { state = s; }

  private:
    uint64_t state;
};

} // namespace pe

#endif // PE_SUPPORT_RNG_HH
