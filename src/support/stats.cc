/**
 * @file
 * Statistics helper implementations.
 */

#include "src/support/stats.hh"

#include <algorithm>

#include "src/support/status.hh"

namespace pe
{

void
Summary::add(double v)
{
    if (n == 0) {
        lo = hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    ++n;
    total += v;
}

double
Summary::mean() const
{
    return n ? total / static_cast<double>(n) : 0.0;
}

double
Summary::min() const
{
    return n ? lo : 0.0;
}

double
Summary::max() const
{
    return n ? hi : 0.0;
}

void
Cdf::add(uint64_t v)
{
    samples.push_back(v);
    sorted = false;
}

void
Cdf::ensureSorted() const
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

double
Cdf::fractionAtOrBelow(uint64_t x) const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    auto it = std::upper_bound(samples.begin(), samples.end(), x);
    return static_cast<double>(it - samples.begin()) /
           static_cast<double>(samples.size());
}

double
Cdf::fractionBelow(uint64_t x) const
{
    if (samples.empty())
        return 0.0;
    ensureSorted();
    auto it = std::lower_bound(samples.begin(), samples.end(), x);
    return static_cast<double>(it - samples.begin()) /
           static_cast<double>(samples.size());
}

uint64_t
Cdf::quantile(double q) const
{
    pe_assert(!samples.empty(), "quantile of empty CDF");
    ensureSorted();
    if (q <= 0.0)
        return samples.front();
    if (q >= 1.0)
        return samples.back();
    size_t idx = static_cast<size_t>(q * static_cast<double>(samples.size()));
    if (idx >= samples.size())
        idx = samples.size() - 1;
    return samples[idx];
}

} // namespace pe
