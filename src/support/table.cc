/**
 * @file
 * Table rendering implementation.
 */

#include "src/support/table.hh"

#include "src/support/status.hh"
#include "src/support/strutil.hh"

namespace pe
{

Table::Table(std::vector<std::string> hdr) : header(std::move(hdr))
{
    pe_assert(!header.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    pe_assert(row.size() == header.size(),
              "row width ", row.size(), " != header width ", header.size());
    rows.push_back(std::move(row));
}

void
Table::addSeparator()
{
    rows.push_back({separatorMark});
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        if (row.size() == 1 && row[0] == separatorMark)
            continue;
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emitLine = [&](const std::vector<std::string> &cells) {
        os << "| ";
        for (size_t c = 0; c < cells.size(); ++c) {
            os << padRight(cells[c], widths[c]);
            os << (c + 1 == cells.size() ? " |" : " | ");
        }
        os << "\n";
    };
    auto emitSep = [&]() {
        os << "|-";
        for (size_t c = 0; c < widths.size(); ++c) {
            os << std::string(widths[c], '-');
            os << (c + 1 == widths.size() ? "-|" : "-|-");
        }
        os << "\n";
    };

    emitLine(header);
    emitSep();
    for (const auto &row : rows) {
        if (row.size() == 1 && row[0] == separatorMark)
            emitSep();
        else
            emitLine(row);
    }
}

} // namespace pe
