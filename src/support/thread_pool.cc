/**
 * @file
 * Thread-pool implementation.
 */

#include "src/support/thread_pool.hh"

#include <cstdlib>

#include "src/support/status.hh"

namespace pe
{

ThreadPool::ThreadPool(unsigned threads)
{
    pe_assert(threads >= 1, "thread pool needs at least one worker");
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard lock(mtx);
        stopping = true;
    }
    wake.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard lock(mtx);
        pe_assert(!stopping, "submit on a stopping thread pool");
        queue.push_back(std::move(task));
        ++inFlight;
    }
    wake.notify_one();
}

size_t
ThreadPool::cancelPending()
{
    size_t dropped;
    {
        std::lock_guard lock(mtx);
        dropped = queue.size();
        queue.clear();
        inFlight -= dropped;
        if (inFlight == 0)
            idle.notify_all();
    }
    return dropped;
}

void
ThreadPool::waitIdle()
{
    std::unique_lock lock(mtx);
    idle.wait(lock, [this] { return inFlight == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mtx);
            wake.wait(lock,
                      [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return;     // stopping, queue drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
        {
            std::lock_guard lock(mtx);
            --inFlight;
            if (inFlight == 0)
                idle.notify_all();
        }
    }
}

unsigned
defaultWorkerCount()
{
    if (const char *env = std::getenv("PE_JOBS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace pe
