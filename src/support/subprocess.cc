/**
 * @file
 * Child-process spawn/reap implementation.
 */

#include "src/support/subprocess.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <iostream>
#include <thread>
#include <utility>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/support/status.hh"

namespace pe::proc
{

ChildProcess::ChildProcess(ChildProcess &&other) noexcept
    : childPid(std::exchange(other.childPid, -1)),
      parentFd(std::exchange(other.parentFd, -1)),
      reaped(std::exchange(other.reaped, false)),
      exitCode(other.exitCode)
{}

ChildProcess &
ChildProcess::operator=(ChildProcess &&other) noexcept
{
    if (this != &other) {
        if (valid() && !reaped)
            wait();
        closeFd();
        childPid = std::exchange(other.childPid, -1);
        parentFd = std::exchange(other.parentFd, -1);
        reaped = std::exchange(other.reaped, false);
        exitCode = other.exitCode;
    }
    return *this;
}

ChildProcess::~ChildProcess()
{
    if (valid() && !reaped)
        wait();
    closeFd();
}

void
ChildProcess::closeFd()
{
    if (parentFd >= 0) {
        ::close(parentFd);
        parentFd = -1;
    }
}

int
ChildProcess::wait()
{
    if (!valid())
        return 0;
    if (reaped)
        return exitCode;
    // EOF on the socket is the only shutdown signal a blocked child
    // ever needs; close before blocking in waitpid.
    closeFd();
    int status = 0;
    pid_t r;
    do {
        r = ::waitpid(childPid, &status, 0);
    } while (r < 0 && errno == EINTR);
    reaped = true;
    if (r < 0)
        exitCode = -1;
    else if (WIFEXITED(status))
        exitCode = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        exitCode = -WTERMSIG(status);
    else
        exitCode = -1;
    return exitCode;
}

bool
ChildProcess::waitFor(int timeoutMs)
{
    if (!valid() || reaped)
        return true;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeoutMs);
    for (;;) {
        int status = 0;
        pid_t r = ::waitpid(childPid, &status, WNOHANG);
        if (r < 0 && errno == EINTR)
            continue;
        if (r < 0) {
            // ECHILD etc: nothing left to reap.
            reaped = true;
            exitCode = -1;
            return true;
        }
        if (r == childPid) {
            reaped = true;
            if (WIFEXITED(status))
                exitCode = WEXITSTATUS(status);
            else if (WIFSIGNALED(status))
                exitCode = -WTERMSIG(status);
            else
                exitCode = -1;
            return true;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        // No SIGCHLD plumbing here; a short sleep keeps this simple
        // and the reap path is not hot.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

void
ChildProcess::kill(int sig)
{
    if (valid() && !reaped)
        ::kill(childPid, sig);
}

ChildProcess
spawnChild(const std::function<int(int fd)> &childMain)
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        pe_fatal("socketpair failed: ", std::strerror(errno));
    }

    // A fork duplicates unflushed stdio buffers into the child, which
    // would replay them on the child's first flush.
    std::cout.flush();
    std::cerr.flush();
    std::fflush(nullptr);

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        pe_fatal("fork failed: ", std::strerror(errno));
    }

    if (pid == 0) {
        // Child: the parent end closes so its EOF is unambiguous.
        ::close(fds[0]);
        int code = 1;
        try {
            code = childMain(fds[1]);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "worker (pid %d) died: %s\n",
                         static_cast<int>(::getpid()), e.what());
        } catch (...) {
            std::fprintf(stderr, "worker (pid %d) died: unknown "
                                 "exception\n",
                         static_cast<int>(::getpid()));
        }
        // _exit: no atexit handlers, no double-flushed inherited
        // buffers, no LeakSanitizer pass over shared pages.
        ::_exit(code);
    }

    ::close(fds[1]);
    return ChildProcess(pid, fds[0]);
}

} // namespace pe::proc
