/**
 * @file
 * SplitMix64 implementation (public-domain algorithm by Steele et al.).
 */

#include "src/support/rng.hh"

#include "src/support/status.hh"

namespace pe
{

uint64_t
Rng::next64()
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    pe_assert(bound > 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    pe_assert(lo <= hi, "nextRange with lo > hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next64());
    return lo + static_cast<int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::fork(uint64_t salt) const
{
    // One SplitMix64 finalizer round over (state, salt) decorrelates
    // the child from both the parent stream and sibling forks.
    uint64_t z = state + (salt + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
}

} // namespace pe
