/**
 * @file
 * A small fixed-size worker-thread pool.
 *
 * Built for the campaign runner (src/core/campaign.hh): many
 * independent, CPU-bound simulation jobs sharded over the host's
 * cores.  Tasks are opaque callables; the pool makes no fairness or
 * ordering promises beyond FIFO dispatch, so callers that need
 * deterministic results must write into caller-owned, per-task slots
 * (as runCampaign does) rather than rely on completion order.
 */

#ifndef PE_SUPPORT_THREAD_POOL_HH
#define PE_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pe
{

/** Fixed set of worker threads consuming a FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (must be >= 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains nothing: joins after the queue empties. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /** Enqueue @p task; it runs on some worker, exactly once. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished running. */
    void waitIdle();

    /**
     * Drop every task that is still queued (not yet picked up by a
     * worker) without running it; tasks already executing finish
     * normally.  Returns the number of tasks dropped.  The campaign
     * runner's FailFast policy uses this so one doomed campaign does
     * not burn cores on results that will be discarded.
     */
    size_t cancelPending();

  private:
    void workerLoop();

    std::mutex mtx;
    std::condition_variable wake;   //!< workers: queue non-empty / stop
    std::condition_variable idle;   //!< waitIdle: inFlight reached zero
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    size_t inFlight = 0;            //!< queued plus currently running
    bool stopping = false;
};

/**
 * Worker count for parallel campaigns: the PE_JOBS environment
 * variable when set to a positive integer, otherwise the hardware
 * concurrency (at least 1).
 */
unsigned defaultWorkerCount();

} // namespace pe

#endif // PE_SUPPORT_THREAD_POOL_HH
