/**
 * @file
 * Plain-text table rendering for the benchmark harnesses.
 *
 * Every bench binary prints paper-style rows through this class so the
 * tables in bench_output.txt line up and are easy to diff against
 * EXPERIMENTS.md.
 */

#ifndef PE_SUPPORT_TABLE_HH
#define PE_SUPPORT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace pe
{

/** Column-aligned text table with a header row and separators. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must have as many cells as the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

  private:
    static constexpr const char *separatorMark = "\x01sep";

    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace pe

#endif // PE_SUPPORT_TABLE_HH
