/**
 * @file
 * Detector implementations.
 */

#include "src/detect/detector.hh"

namespace pe::detect
{

void
Detector::onBoundsCheck(const DetectCtx &, uint32_t)
{}

void
Detector::onMemAccess(const DetectCtx &, uint32_t, bool)
{}

void
Detector::onAssert(const DetectCtx &, int32_t)
{}

void
Detector::reportMem(const DetectCtx &ctx, ReportKind kind, uint32_t addr)
{
    Report r;
    r.kind = kind;
    r.pc = ctx.pc;
    r.addr = addr;
    r.fromNtPath = ctx.fromNtPath;
    r.ntSpawnPc = ctx.ntSpawnPc;
    r.site = ctx.program ? ctx.program->describePc(ctx.pc) : "?";
    ctx.monitor->add(r);
}

bool
classifyViolation(const DetectCtx &ctx, uint32_t addr, bool watchOnly,
                  ReportKind &kind)
{
    switch (ctx.registry->classify(addr)) {
      case AddrClass::Guard:
        kind = ReportKind::GuardHit;
        return true;
      case AddrClass::FreedPayload:
      case AddrClass::FreedGuard:
        kind = ReportKind::UseAfterFree;
        return true;
      case AddrClass::Payload:
        return false;
      case AddrClass::Unknown:
        break;
    }

    // Not inside any registered object.  The null zone is covered by
    // both checkers (iWatcher watches it; CCured null-checks).
    if (addr < isa::Program::nullZoneWords) {
        kind = ReportKind::WildAccess;
        return true;
    }
    if (watchOnly) {
        // Watchpoints cover only registered ranges and the null page;
        // anything else is invisible to the hardware checker.
        return false;
    }

    // CCured-like policy: runtime cells, plain globals, the live heap
    // and the stack are fine; everything else is a wild access.
    if (addr >= isa::Program::nullZoneWords && addr < ctx.heapBase)
        return false;                   // runtime cells and globals
    if (addr >= ctx.heapBase && addr < ctx.heapTop)
        return false;                           // allocated heap
    if (addr >= ctx.stackBase && addr < ctx.memWords)
        return false;                           // stack
    kind = ReportKind::WildAccess;
    return true;
}

void
BoundsChecker::onBoundsCheck(const DetectCtx &ctx, uint32_t addr)
{
    ReportKind kind;
    if (classifyViolation(ctx, addr, false, kind))
        reportMem(ctx, kind, addr);
}

void
WatchChecker::onMemAccess(const DetectCtx &ctx, uint32_t addr, bool)
{
    ReportKind kind;
    if (classifyViolation(ctx, addr, true, kind))
        reportMem(ctx, kind, addr);
}

void
AssertChecker::onAssert(const DetectCtx &ctx, int32_t id)
{
    Report r;
    r.kind = ReportKind::AssertFail;
    r.pc = ctx.pc;
    r.assertId = id;
    r.fromNtPath = ctx.fromNtPath;
    r.ntSpawnPc = ctx.ntSpawnPc;
    r.site = ctx.program ? ctx.program->describePc(ctx.pc) : "?";
    ctx.monitor->add(r);
}

} // namespace pe::detect
