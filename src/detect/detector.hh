/**
 * @file
 * The dynamic bug detector interface and the three detection methods
 * evaluated in the paper (Section 6.2):
 *
 *  - BoundsChecker: a CCured-like software-only memory checker that
 *    validates every compiler-inserted Chkb hook against the object
 *    registry and red zones; each check costs cycles (the software
 *    overhead CCured pays).
 *  - WatchChecker: an iWatcher-like hardware-assisted checker whose
 *    watchpoints cover all guard words and freed objects; it observes
 *    every load/store at (near-)zero cost and only pays when
 *    triggered.
 *  - AssertChecker: plain assertions (the Assert instruction).
 *
 * PathExpander "makes no assumption about bug types or dynamic bug
 * detection methods": the engine only routes step events to whatever
 * Detector is installed, which is the paper's "simple integration"
 * property.
 */

#ifndef PE_DETECT_DETECTOR_HH
#define PE_DETECT_DETECTOR_HH

#include <cstdint>

#include "src/detect/registry.hh"
#include "src/detect/report.hh"
#include "src/isa/program.hh"

namespace pe::detect
{

/** Per-event context handed to a detector. */
struct DetectCtx
{
    const isa::Program *program = nullptr;
    const ObjectRegistry *registry = nullptr;
    MonitorArea *monitor = nullptr;

    uint32_t pc = 0;
    bool fromNtPath = false;
    uint32_t ntSpawnPc = 0;

    /** Layout facts for wild-access classification. */
    uint32_t dataBase = 0;
    uint32_t heapBase = 0;
    uint32_t heapTop = 0;       //!< current bump-pointer value
    uint32_t stackBase = 0;     //!< lowest stack address
    uint32_t memWords = 0;
};

/** Abstract dynamic bug detector. */
class Detector
{
  public:
    virtual ~Detector() = default;

    virtual const char *name() const = 0;

    /** Compiler-inserted bounds-check hook (Chkb) at @p addr. */
    virtual void onBoundsCheck(const DetectCtx &ctx, uint32_t addr);

    /** Any data load/store at @p addr. */
    virtual void onMemAccess(const DetectCtx &ctx, uint32_t addr,
                             bool isWrite);

    /** Assertion @p id evaluated false. */
    virtual void onAssert(const DetectCtx &ctx, int32_t id);

    /** Extra cycles charged per Chkb hook. */
    virtual uint64_t boundsCheckCost() const { return 0; }

    /** Extra cycles charged per load/store. */
    virtual uint64_t memAccessCost() const { return 0; }

  protected:
    /** Emit a memory-violation report. */
    void reportMem(const DetectCtx &ctx, ReportKind kind, uint32_t addr);
};

/** CCured-like software bounds checker. */
class BoundsChecker : public Detector
{
  public:
    const char *name() const override { return "ccured-like"; }
    void onBoundsCheck(const DetectCtx &ctx, uint32_t addr) override;
    uint64_t boundsCheckCost() const override { return checkCost; }

  private:
    /** Cost of one software bounds check (metadata load + compares). */
    static constexpr uint64_t checkCost = 6;
};

/** iWatcher-like hardware-assisted checker. */
class WatchChecker : public Detector
{
  public:
    const char *name() const override { return "iwatcher-like"; }
    void onMemAccess(const DetectCtx &ctx, uint32_t addr,
                     bool isWrite) override;
    uint64_t memAccessCost() const override { return 0; }
};

/** Assertion-based detection. */
class AssertChecker : public Detector
{
  public:
    const char *name() const override { return "assertions"; }
    void onAssert(const DetectCtx &ctx, int32_t id) override;
};

/**
 * Shared address-classification policy: map @p addr to a ReportKind,
 * or ReportKind-free "fine" (returned as std::nullopt-like sentinel).
 *
 * @param watchOnly true for watchpoint semantics: only guard/freed
 *        ranges and the null page are covered by watchpoints; other
 *        wild addresses are invisible to the checker.
 * @return true and sets @p kind when a violation should be reported.
 */
bool classifyViolation(const DetectCtx &ctx, uint32_t addr, bool watchOnly,
                       ReportKind &kind);

} // namespace pe::detect

#endif // PE_DETECT_DETECTOR_HH
