/**
 * @file
 * The object registry: what the dynamic checkers know about live
 * memory objects and their guard zones.
 *
 * Every array, heap block and the blank structure is registered with
 * a payload span surrounded by Program::guardWords of red zone on each
 * side (the compiler allocates the guard words).  The registry
 * classifies an address as payload, guard, freed or unknown.
 *
 * Registries form parent chains exactly like VersionedBuffer: an
 * NT-Path gets an overlay registry so that objects it allocates or
 * frees roll back with the path when it is squashed, while the
 * primary path's registry is never polluted.
 */

#ifndef PE_DETECT_REGISTRY_HH
#define PE_DETECT_REGISTRY_HH

#include <cstdint>
#include <map>
#include <optional>

#include "src/isa/program.hh"

namespace pe::detect
{

/** Classification of an address against the registered objects. */
enum class AddrClass : uint8_t
{
    Unknown = 0,    //!< not inside any registered object span
    Payload,        //!< inside a live object's payload
    Guard,          //!< inside a live object's red zone
    FreedPayload,   //!< inside a freed object's former payload
    FreedGuard,     //!< inside a freed object's former red zone
};

/** One registered object. */
struct ObjectInfo
{
    uint32_t base = 0;      //!< payload start
    uint32_t size = 0;      //!< payload words
    isa::ObjectKind kind = isa::ObjectKind::GlobalArray;
    bool live = true;

    uint32_t spanStart() const { return base - isa::Program::guardWords; }
    uint32_t spanEnd() const
    {
        return base + size + isa::Program::guardWords;
    }
};

/** Interval registry of objects, with optional overlay chaining. */
class ObjectRegistry
{
  public:
    ObjectRegistry() = default;

    /** Build an overlay on top of @p parentRegistry (not owned). */
    explicit ObjectRegistry(const ObjectRegistry *parentRegistry)
        : parent(parentRegistry)
    {}

    /**
     * Register a live object with payload [base, base+size).  Any
     * previously registered object overlapping the new span (stack or
     * heap reuse) is dropped from this level first.
     */
    void registerObject(uint32_t base, uint32_t size, isa::ObjectKind kind);

    /**
     * Mark the object whose payload starts at @p base as freed.  If
     * the object lives in the parent chain it is copied here as a
     * tombstone, so the parent stays untouched.
     */
    void unregisterObject(uint32_t base);

    /** Classify @p addr, consulting overlays before parents. */
    AddrClass classify(uint32_t addr) const;

    /** The object whose span contains @p addr, if any. */
    std::optional<ObjectInfo> findContaining(uint32_t addr) const;

    size_t numOwn() const { return objects.size(); }
    size_t numLiveOwn() const;

  private:
    const ObjectInfo *findOwn(uint32_t addr) const;

    const ObjectRegistry *parent = nullptr;
    std::map<uint32_t, ObjectInfo> objects;     //!< keyed by spanStart
};

} // namespace pe::detect

#endif // PE_DETECT_REGISTRY_HH
