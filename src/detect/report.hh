/**
 * @file
 * Bug reports and the monitor memory area.
 *
 * The paper stores detector error reports in "a special memory area
 * pointed by the Monitor_memory_area register" which is exempt from
 * NT-Path rollback (Section 4.1): reports made while executing an
 * NT-Path survive the squash.  MonitorArea models exactly that.
 */

#ifndef PE_DETECT_REPORT_HH
#define PE_DETECT_REPORT_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace pe::detect
{

/** Kinds of violations the detectors can report. */
enum class ReportKind : uint8_t
{
    GuardHit,       //!< access landed in an object's red zone
    WildAccess,     //!< access outside every known object
    UseAfterFree,   //!< access inside a freed object
    AssertFail,     //!< assertion evaluated false
};

const char *reportKindName(ReportKind kind);

/** One detector report. */
struct Report
{
    ReportKind kind;
    uint32_t pc = 0;            //!< reporting instruction
    uint32_t addr = 0;          //!< offending address (memory kinds)
    int32_t assertId = 0;       //!< assertion id (AssertFail)
    bool fromNtPath = false;    //!< raised while executing an NT-Path
    uint32_t ntSpawnPc = 0;     //!< branch that spawned the NT-Path
    std::string site;           //!< human-readable "func:line"
};

/**
 * The monitor memory area: the append-only report store that NT-Path
 * squashes never roll back.
 */
class MonitorArea
{
  public:
    void add(const Report &report);

    const std::vector<Report> &reports() const { return all; }

    /**
     * Distinct report sites, the unit in which the paper counts both
     * detected bugs and false positives: (kind, pc) for memory
     * violations, (kind, assertId) for assertion failures.
     */
    size_t numDistinctSites() const { return sites.size(); }

    /** Reports deduplicated by site (first occurrence kept). */
    std::vector<Report> distinctReports() const;

    void clear();

  private:
    static uint64_t siteKey(const Report &report);

    std::vector<Report> all;
    std::set<uint64_t> sites;
};

} // namespace pe::detect

#endif // PE_DETECT_REPORT_HH
