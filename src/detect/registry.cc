/**
 * @file
 * Object registry implementation.
 */

#include "src/detect/registry.hh"

#include "src/support/status.hh"

namespace pe::detect
{

void
ObjectRegistry::registerObject(uint32_t base, uint32_t size,
                               isa::ObjectKind kind)
{
    pe_assert(base >= isa::Program::guardWords,
              "object base leaves no room for the low guard");
    ObjectInfo info{base, size, kind, true};

    // Drop own entries overlapping the new span (stack/heap reuse).
    auto it = objects.lower_bound(info.spanStart());
    if (it != objects.begin()) {
        auto prev = std::prev(it);
        if (prev->second.spanEnd() > info.spanStart())
            it = prev;
    }
    while (it != objects.end() && it->second.spanStart() < info.spanEnd())
        it = objects.erase(it);

    objects.emplace(info.spanStart(), info);
}

void
ObjectRegistry::unregisterObject(uint32_t base)
{
    uint32_t span = base - isa::Program::guardWords;
    auto it = objects.find(span);
    if (it != objects.end()) {
        // Stack arrays simply vanish at scope exit (their memory is
        // ordinary stack again); heap blocks leave a tombstone so
        // later touches classify as use-after-free.
        if (it->second.kind == isa::ObjectKind::StackArray)
            objects.erase(it);
        else
            it->second.live = false;
        return;
    }
    // Tombstone an object known only to the parent chain.
    for (const ObjectRegistry *p = parent; p; p = p->parent) {
        auto pit = p->objects.find(span);
        if (pit != p->objects.end()) {
            ObjectInfo dead = pit->second;
            dead.live = false;
            objects.emplace(span, dead);
            return;
        }
    }
    // Freeing something never registered: ignore (the checker will
    // classify later touches of that memory as it sees fit).
}

const ObjectInfo *
ObjectRegistry::findOwn(uint32_t addr) const
{
    auto it = objects.upper_bound(addr);
    if (it == objects.begin())
        return nullptr;
    --it;
    const ObjectInfo &obj = it->second;
    if (addr >= obj.spanStart() && addr < obj.spanEnd())
        return &obj;
    return nullptr;
}

AddrClass
ObjectRegistry::classify(uint32_t addr) const
{
    for (const ObjectRegistry *r = this; r; r = r->parent) {
        if (const ObjectInfo *obj = r->findOwn(addr)) {
            bool payload = addr >= obj->base && addr < obj->base + obj->size;
            if (obj->live)
                return payload ? AddrClass::Payload : AddrClass::Guard;
            // A dead stack array is plain stack memory again: an
            // overlay tombstone (scope exited inside an NT-Path)
            // classifies as unknown, not use-after-free.
            if (obj->kind == isa::ObjectKind::StackArray)
                return AddrClass::Unknown;
            return payload ? AddrClass::FreedPayload
                           : AddrClass::FreedGuard;
        }
    }
    return AddrClass::Unknown;
}

std::optional<ObjectInfo>
ObjectRegistry::findContaining(uint32_t addr) const
{
    for (const ObjectRegistry *r = this; r; r = r->parent) {
        if (const ObjectInfo *obj = r->findOwn(addr))
            return *obj;
    }
    return std::nullopt;
}

size_t
ObjectRegistry::numLiveOwn() const
{
    size_t n = 0;
    for (const auto &[span, obj] : objects) {
        if (obj.live)
            ++n;
    }
    return n;
}

} // namespace pe::detect
