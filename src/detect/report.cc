/**
 * @file
 * MonitorArea implementation.
 */

#include "src/detect/report.hh"

namespace pe::detect
{

const char *
reportKindName(ReportKind kind)
{
    switch (kind) {
      case ReportKind::GuardHit: return "guard-hit";
      case ReportKind::WildAccess: return "wild-access";
      case ReportKind::UseAfterFree: return "use-after-free";
      case ReportKind::AssertFail: return "assert-fail";
    }
    return "?";
}

uint64_t
MonitorArea::siteKey(const Report &r)
{
    uint64_t id = r.kind == ReportKind::AssertFail
                      ? static_cast<uint32_t>(r.assertId)
                      : r.pc;
    return (static_cast<uint64_t>(r.kind) << 32) | id;
}

void
MonitorArea::add(const Report &report)
{
    all.push_back(report);
    sites.insert(siteKey(report));
}

std::vector<Report>
MonitorArea::distinctReports() const
{
    std::set<uint64_t> seen;
    std::vector<Report> out;
    for (const auto &r : all) {
        if (seen.insert(siteKey(r)).second)
            out.push_back(r);
    }
    return out;
}

void
MonitorArea::clear()
{
    all.clear();
    sites.clear();
}

} // namespace pe::detect
