/**
 * @file
 * Configuration helpers.
 */

#include "src/core/config.hh"

#include <type_traits>

namespace pe::core
{

const char *
peModeName(PeMode mode)
{
    switch (mode) {
      case PeMode::Off: return "baseline";
      case PeMode::Standard: return "pe-standard";
      case PeMode::Cmp: return "pe-cmp";
    }
    return "?";
}

PeConfig
PeConfig::forMode(PeMode m)
{
    PeConfig cfg;
    cfg.mode = m;
    cfg.timing = (m == PeMode::Cmp) ? sim::TimingConfig::cmpConfig()
                                    : sim::TimingConfig::standardConfig();
    return cfg;
}

namespace
{

/** Field-by-field FNV-1a; explicit per field so padding never leaks. */
struct Fnv
{
    uint64_t h = 0xcbf29ce484222325ull;

    void bytes(const void *p, size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 0x100000001b3ull;
        }
    }

    template <typename T>
    void value(T v)
    {
        static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
        bytes(&v, sizeof v);
    }

    void str(const std::string &s)
    {
        value(s.size());
        bytes(s.data(), s.size());
    }
};

} // namespace

uint64_t
configHash(const PeConfig &cfg)
{
    Fnv f;
    f.value(cfg.mode);
    f.value(cfg.costModel);
    f.value(cfg.maxNtPathLength);
    f.value(cfg.ntPathCounterThreshold);
    f.value(cfg.maxNumNtPaths);
    f.value(cfg.counterResetInterval);
    f.value(cfg.variableFixing);
    f.value(cfg.followNonTakenInNt);
    f.value(cfg.randomSpawnFraction);
    f.value(cfg.randomSpawnSeed);
    f.value(cfg.sandboxIo);
    f.value(cfg.numCores);
    f.value(cfg.maxTakenInstructions);
    f.value(cfg.maxSegmentDepth);
    f.value(cfg.spawnPreFilter);
    f.value(cfg.selfPrune);
    f.value(cfg.recordEdgeTrace);
    f.value(cfg.edgeTraceCap);
    for (const auto &fn : cfg.noSpawnFuncs)
        f.str(fn);
    f.value(cfg.layout.memWords);
    f.value(cfg.layout.stackWords);
    f.value(cfg.btbParams.entries);
    f.value(cfg.btbParams.ways);
    f.value(cfg.btbParams.counterBits);
    f.value(cfg.timing.aluCost);
    f.value(cfg.timing.mulCost);
    f.value(cfg.timing.divCost);
    f.value(cfg.timing.branchCost);
    f.value(cfg.timing.jumpCost);
    f.value(cfg.timing.sysCost);
    f.value(cfg.timing.allocCost);
    f.value(cfg.timing.regObjCost);
    f.value(cfg.timing.fixCost);
    f.value(cfg.timing.spawnOverhead);
    f.value(cfg.timing.squashOverhead);
    f.value(cfg.timing.mem.l1HitLatency);
    f.value(cfg.timing.mem.l2HitLatency);
    f.value(cfg.timing.mem.memLatency);
    f.value(cfg.timing.mem.l2PortHold);
    f.value(cfg.timing.mem.memPortHold);
    f.value(cfg.swCosts.perInstructionDilation);
    f.value(cfg.swCosts.branchAnalysisCost);
    f.value(cfg.swCosts.checkpointCost);
    f.value(cfg.swCosts.ntWriteLogCost);
    f.value(cfg.swCosts.ntRestorePerWord);
    f.value(cfg.swCosts.restoreRegsCost);
    return f.h;
}

} // namespace pe::core
