/**
 * @file
 * Configuration helpers.
 */

#include "src/core/config.hh"

namespace pe::core
{

const char *
peModeName(PeMode mode)
{
    switch (mode) {
      case PeMode::Off: return "baseline";
      case PeMode::Standard: return "pe-standard";
      case PeMode::Cmp: return "pe-cmp";
    }
    return "?";
}

PeConfig
PeConfig::forMode(PeMode m)
{
    PeConfig cfg;
    cfg.mode = m;
    cfg.timing = (m == PeMode::Cmp) ? sim::TimingConfig::cmpConfig()
                                    : sim::TimingConfig::standardConfig();
    return cfg;
}

} // namespace pe::core
