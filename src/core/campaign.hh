/**
 * @file
 * The campaign runner: many independent monitored runs in parallel.
 *
 * The paper's evaluation is a campaign — per workload, per input, per
 * config sweep point (Tables 3-5, Section 7) — of runs that share
 * nothing but read-only program images.  Each PathExpanderEngine run
 * owns an isolated RunState (memory, BTB, hierarchy, RNG), so engine
 * runs are embarrassingly parallel; runCampaign shards a job vector
 * across a worker pool and returns results in deterministic job
 * order, bit-identical to a serial execution of the same jobs.
 *
 * Detectors are stateful (object registries, watch sets, report
 * dedup), so a job carries a detector *factory* rather than a
 * detector: each run constructs its own instance on the worker that
 * executes it.
 */

#ifndef PE_CORE_CAMPAIGN_HH
#define PE_CORE_CAMPAIGN_HH

#include <functional>
#include <memory>
#include <vector>

#include "src/core/engine.hh"

namespace pe::core
{

/** Builds a fresh detector for one run; null means no detector. */
using DetectorFactory =
    std::function<std::unique_ptr<detect::Detector>()>;

/** One independent monitored run of a campaign. */
struct CampaignJob
{
    /** Program image; shared read-only across concurrent runs. */
    const isa::Program *program = nullptr;
    std::vector<int32_t> input;
    PeConfig config;
    DetectorFactory detectorFactory;
};

struct CampaignOptions
{
    /** Worker threads; 0 means defaultWorkerCount() (PE_JOBS env). */
    unsigned threads = 0;

    /**
     * Progress hook: called once per finished job with its index and
     * result, before the campaign returns.  Calls arrive in
     * *completion* order (serialized — never concurrently), which
     * under a parallel campaign is not job order; consumers needing
     * determinism should use `CampaignOutcome::results`, which is
     * always job-ordered.  Keep the callback cheap: workers holding
     * a finished result wait on it.
     */
    std::function<void(size_t jobIndex, const RunResult &result)>
        onResult;
};

/** Options with just a worker count — the common call-site shape. */
inline CampaignOptions
campaignThreads(unsigned threads)
{
    CampaignOptions opts;
    opts.threads = threads;
    return opts;
}

/** Everything a campaign produced. */
struct CampaignOutcome
{
    /** One result per job, in job order regardless of scheduling. */
    std::vector<RunResult> results;

    /** Host wall-clock time of the whole campaign, in seconds. */
    double wallSeconds = 0.0;

    /** Workers actually used (1 = ran serially). */
    unsigned threadsUsed = 1;
};

/**
 * Run every job of @p jobs and return their results in job order.
 * With more than one worker the jobs are sharded across a thread
 * pool; results are bit-identical to a serial run because each job's
 * state is fully isolated and the engine is deterministic.
 * A job's failure (FatalError) is rethrown after the pool drains.
 */
CampaignOutcome runCampaign(const std::vector<CampaignJob> &jobs,
                            const CampaignOptions &opts = {});

/**
 * Order-independent merge-reduce for the cumulative-coverage
 * experiment (Section 7.4): the union of every result's edge sets.
 * All results must come from runs of @p program.
 */
coverage::BranchCoverage
mergeCoverage(const isa::Program &program,
              const std::vector<RunResult> &results);

} // namespace pe::core

#endif // PE_CORE_CAMPAIGN_HH
