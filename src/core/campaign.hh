/**
 * @file
 * The campaign runner: many independent monitored runs in parallel.
 *
 * The paper's evaluation is a campaign — per workload, per input, per
 * config sweep point (Tables 3-5, Section 7) — of runs that share
 * nothing but read-only program images.  Each PathExpanderEngine run
 * owns an isolated RunState (memory, BTB, hierarchy, RNG), so engine
 * runs are embarrassingly parallel; runCampaign shards a job vector
 * across a worker pool and returns results in deterministic job
 * order, bit-identical to a serial execution of the same jobs.
 *
 * Detectors are stateful (object registries, watch sets, report
 * dedup), so a job carries a detector *factory* rather than a
 * detector: each run constructs its own instance on the worker that
 * executes it.
 *
 * Fault tolerance: a long campaign should not forfeit thousands of
 * finished runs because one job threw or wedged.  CampaignOptions
 * carries a FailPolicy (fail-fast / continue / retry) deciding what a
 * job failure does to the rest of the campaign, and an optional
 * per-job wall-clock deadline enforced by a watchdog through the
 * engine's cooperative cancellation token.  Surviving results are
 * bit-identical to the same jobs in a failure-free campaign: a
 * failure never perturbs its neighbours.
 */

#ifndef PE_CORE_CAMPAIGN_HH
#define PE_CORE_CAMPAIGN_HH

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.hh"

namespace pe::core
{

/** Builds a fresh detector for one run; null means no detector. */
using DetectorFactory =
    std::function<std::unique_ptr<detect::Detector>()>;

/** One independent monitored run of a campaign. */
struct CampaignJob
{
    /** Program image; shared read-only across concurrent runs. */
    const isa::Program *program = nullptr;
    std::vector<int32_t> input;
    PeConfig config;
    DetectorFactory detectorFactory;
};

/** What a job failure (an exception out of a run) does to the rest. */
enum class FailMode : uint8_t
{
    /**
     * Cancel the jobs still queued, drain the in-flight ones, rethrow
     * the first exception.  Follow-on failures are warn()ed and
     * counted, never silently dropped.
     */
    FailFast,

    /**
     * Record the failure in CampaignOutcome::failures and keep going.
     * Surviving results are job-ordered and bit-identical to the same
     * jobs run in a failure-free campaign.
     */
    Continue,

    /**
     * Re-run the failed job on the same worker — up to maxAttempts
     * attempts total, sleeping backoffMs * attemptsSoFar between
     * them.  Every attempt is a full deterministic reproduction (the
     * engine is a pure function of the job).  A job still failing
     * after maxAttempts is recorded as under Continue.
     */
    Retry,
};

struct FailPolicy
{
    FailMode mode = FailMode::FailFast;

    /** Retry only: total attempts per job (>= 1). */
    unsigned maxAttempts = 1;

    /** Retry only: base backoff between attempts (scaled linearly). */
    std::chrono::milliseconds backoffMs{0};

    static FailPolicy failFast() { return {}; }

    static FailPolicy continueOnError()
    {
        return {FailMode::Continue, 1, std::chrono::milliseconds{0}};
    }

    static FailPolicy
    retry(unsigned maxAttempts,
          std::chrono::milliseconds backoff = std::chrono::milliseconds{0})
    {
        return {FailMode::Retry, maxAttempts, backoff};
    }
};

/** One job that produced no result (Continue/Retry policies). */
struct JobFailure
{
    size_t jobIndex = 0;

    /** Attempts consumed (1 under Continue, up to maxAttempts). */
    unsigned attempts = 1;

    /** what() of the last attempt's exception. */
    std::string what;
};

struct CampaignOptions
{
    /** Worker threads; 0 means defaultWorkerCount() (PE_JOBS env). */
    unsigned threads = 0;

    /** What a job failure does to the rest of the campaign. */
    FailPolicy failPolicy;

    /**
     * Per-job wall-clock deadline; zero disables the watchdog.  A job
     * over its deadline is cancelled cooperatively: the engine polls
     * the token once per dispatch and returns a partial RunResult
     * flagged `aborted` with stopCause == RunStopCause::Deadline.
     * Aborted runs are results, not failures — they are never
     * retried.
     */
    std::chrono::milliseconds jobDeadline{0};

    /**
     * Progress hook: called once per finished job with its index and
     * result, before the campaign returns.  Calls arrive in
     * *completion* order (serialized — never concurrently), which
     * under a parallel campaign is not job order; consumers needing
     * determinism should use `CampaignOutcome::results`, which is
     * always job-ordered.  Keep the callback cheap: workers holding
     * a finished result wait on it.
     */
    std::function<void(size_t jobIndex, const RunResult &result)>
        onResult;
};

/** Options with just a worker count — the common call-site shape. */
inline CampaignOptions
campaignThreads(unsigned threads)
{
    CampaignOptions opts;
    opts.threads = threads;
    return opts;
}

/** Everything a campaign produced. */
struct CampaignOutcome
{
    /**
     * One result per *surviving* job, in job order regardless of
     * scheduling.  Without failures this is one result per job.
     */
    std::vector<RunResult> results;

    /**
     * Job index of each results entry: results[k] is the result of
     * jobs[resultJobIndex[k]].  The identity mapping when no job
     * failed; under Continue/Retry the failed indices are missing.
     */
    std::vector<size_t> resultJobIndex;

    /** Jobs that produced no result, in job order (Continue/Retry). */
    std::vector<JobFailure> failures;

    /**
     * Exceptions that were caught and warn()ed but surfaced as
     * neither the rethrown error nor the final `what` of a failure
     * record: fail-fast follow-on failures, and retry attempts that
     * were superseded by a later attempt.
     */
    size_t suppressedErrors = 0;

    /** Host wall-clock time of the whole campaign, in seconds. */
    double wallSeconds = 0.0;

    /** Workers actually used (1 = ran serially). */
    unsigned threadsUsed = 1;
};

/**
 * Run every job of @p jobs and return their results in job order.
 * With more than one worker the jobs are sharded across a thread
 * pool; results are bit-identical to a serial run because each job's
 * state is fully isolated and the engine is deterministic.
 *
 * A job's failure (an exception out of the run) is handled per
 * opts.failPolicy: rethrown after the pool drains (FailFast, the
 * default), recorded in the outcome (Continue), or retried
 * deterministically (Retry).  Fault-injection site: each attempt
 * passes "campaign.run_job".
 */
CampaignOutcome runCampaign(const std::vector<CampaignJob> &jobs,
                            const CampaignOptions &opts = {});

/**
 * Order-independent merge-reduce for the cumulative-coverage
 * experiment (Section 7.4): the union of every result's edge sets.
 * All results must come from runs of @p program.
 */
coverage::BranchCoverage
mergeCoverage(const isa::Program &program,
              const std::vector<RunResult> &results);

} // namespace pe::core

#endif // PE_CORE_CAMPAIGN_HH
