/**
 * @file
 * Shared internal state and helpers of the PathExpander engine,
 * used by both the inline (Off/Standard) and the CMP drivers.
 *
 * This is an implementation header (included only by engine.cc and
 * cmp.cc), not part of the public API.
 */

#ifndef PE_CORE_ENGINE_IMPL_HH
#define PE_CORE_ENGINE_IMPL_HH

#include <algorithm>
#include <memory>
#include <utility>

#include "src/branch/btb.hh"
#include "src/core/engine.hh"
#include "src/mem/hierarchy.hh"
#include "src/mem/main_memory.hh"
#include "src/sim/interpreter.hh"
#include "src/sim/superblock.hh"
#include "src/support/rng.hh"

namespace pe::core
{

/** All per-run mutable state. */
struct PathExpanderEngine::RunState
{
    RunState(const isa::Program &program, const PeConfig &config)
        : memory(config.layout.memWords),
          btb(config.btbParams),
          hierarchy(config.mode == PeMode::Cmp ? config.numCores : 1,
                    config.timing.mem),
          result(program),
          sinceCounterReset(0),
          rng(config.randomSpawnSeed)
    {}

    mem::MainMemory memory;
    branch::Btb btb;
    mem::MemHierarchy hierarchy;
    detect::ObjectRegistry registry;    //!< primary-path object view
    RunResult result;
    sim::Core primary;
    uint64_t sinceCounterReset;
    Rng rng;                            //!< random spawn factor

    /**
     * Self-pruning superblock cache (cfg.selfPrune): this run's
     * pruned re-decode image.  Constructed lazily at the first pruned
     * dispatch — promotion state is per run (counter values and
     * coverage are), so it cannot live on the engine.
     */
    std::unique_ptr<sim::SuperblockCache> superblocks;

    /** Watchdog cancel token; null for the vast majority of runs. */
    const std::atomic<bool> *cancel = nullptr;
};

namespace engine_detail
{

/**
 * Watchdog poll, placed once per execution-loop dispatch: a null
 * check when no deadline is armed (the common case), one relaxed
 * atomic load when one is.
 */
inline bool
cancelRequested(const PathExpanderEngine::RunState &state)
{
    return state.cancel &&
           state.cancel->load(std::memory_order_relaxed);
}

/**
 * Instruction cap for one runBlock dispatch.  Without a watchdog a
 * block may run to the caller's full remaining budget; with one, a
 * single dispatch could otherwise retire hundreds of millions of
 * straight-line instructions (PE off runs branches in-block) before
 * the next poll.  Chunking is bit-identical — the engine loops
 * re-enter the block path at the updated pc and all counts
 * accumulate — it only bounds the poll interval, to well under a
 * millisecond.
 */
inline uint64_t
blockCap(const PathExpanderEngine::RunState &state, uint64_t remaining)
{
    constexpr uint64_t pollChunk = uint64_t{1} << 16;
    return state.cancel ? std::min(remaining, pollChunk) : remaining;
}

/** True when the software (PIN) cost model applies to this run. */
inline bool
softwareCosts(const PeConfig &cfg)
{
    return cfg.costModel == CostModelKind::Software &&
           cfg.mode != PeMode::Off;
}

/**
 * Per-instruction cycle charge the cost model adds on top of the
 * base opcode cost for block-safe instructions (which touch neither
 * the memory hierarchy nor the detector): the software model's JIT
 * dilation, zero under the hardware model.  Bulk-charging
 * `blockOut.cycles + n * blockDilation(cfg)` is exactly what the
 * per-step loop accumulates through chargeStep for the same
 * instructions.
 */
inline uint64_t
blockDilation(const PeConfig &cfg)
{
    return softwareCosts(cfg) ? cfg.swCosts.perInstructionDilation : 0;
}

/**
 * Cycles consumed by one executed step on @p coreId at time @p now:
 * base opcode cost, memory-hierarchy latency, detector check cost and
 * (when applicable) the software-implementation instrumentation cost.
 */
uint64_t chargeStep(const isa::Program &program, const PeConfig &cfg,
                    PathExpanderEngine::RunState &state,
                    detect::Detector *detector, int coreId,
                    const sim::StepResult &res, uint64_t now, bool inNt);

/**
 * Route one step's events into the object registry view @p registry
 * and the installed @p detector (reports go to the monitor area).
 */
void routeEvents(const isa::Program &program, const PeConfig &cfg,
                 PathExpanderEngine::RunState &state,
                 detect::Detector *detector,
                 detect::ObjectRegistry &registry, mem::MemCtx &ctx,
                 const sim::StepResult &res, bool fromNt,
                 uint32_t ntSpawnPc);

/**
 * NT-Path selection (Section 4.2 plus the random-factor extension):
 * spawn when the non-taken edge's exercise count is below the
 * threshold, or — with randomSpawnFraction > 0 — occasionally even
 * when it is not.  The tagged-checking-function exclusion is a
 * per-PC flag folded into the decoded program (no range scan).
 */
inline bool
shouldSpawn(const PeConfig &cfg, PathExpanderEngine::RunState &state,
            const sim::DecodedProgram &decoded, uint32_t pc, bool ntDir)
{
    if (decoded.noSpawn(pc))
        return false;
    // Static spawn pre-filter: edges marked doomed at construction
    // (immediate-syscall NT continuations) are never worth a spawn.
    // Flags are only ever set when cfg.spawnPreFilter is on.
    if (decoded.doomedEdge(pc, ntDir))
        return false;
    if (state.btb.count(pc, ntDir) < cfg.ntPathCounterThreshold)
        return true;
    return cfg.randomSpawnFraction > 0.0 &&
           state.rng.nextDouble() < cfg.randomSpawnFraction;
}

/**
 * The runtime saturation predicate (self-pruning, cfg.selfPrune):
 * after the instrumented path has fully bookkept a resolved branch,
 * promote it into the superblock cache when every piece of that
 * bookkeeping has provably become a no-op:
 *
 *  - statically eligible: its BTB set can never evict, so skipping
 *    the LRU stamp cannot change a victim (analysis/regions.hh);
 *  - both taken-path coverage bits recorded: further onTakenEdge
 *    calls are idempotent;
 *  - per direction, the spawn decision is frozen false: the edge is
 *    no-spawn-tagged or statically doomed (shouldSpawn returns
 *    before reading the counter — the skipped increment is then
 *    unobservable until the reset zeroes it anyway), or its counter
 *    sits at the saturation cap (increments are value no-ops and,
 *    with threshold <= cap enforced by the caller's activation gate,
 *    count < threshold can never hold again this epoch).
 *
 * The next counter reset invalidates every promotion wholesale (the
 * epoch check in SuperblockCache::syncEpoch) and the branch falls
 * back to the instrumented path until it re-saturates.
 */
inline void
maybePromote(PathExpanderEngine::RunState &state,
             const sim::DecodedProgram &decoded, uint32_t pc)
{
    // Static eligibility is folded into the cache's bits at
    // construction; one lookup covers both legs.
    sim::SuperblockCache &sc = *state.superblocks;
    if (!sc.eligible(pc) || sc.promoted(pc))
        return;
    const coverage::BranchCoverage &cov = state.result.coverage;
    if (!cov.takenEdgeCovered(pc, false) ||
        !cov.takenEdgeCovered(pc, true)) {
        return;
    }
    const bool noSpawn = decoded.noSpawn(pc);
    for (bool dir : {false, true}) {
        if (noSpawn || decoded.doomedEdge(pc, dir) ||
            state.btb.atCap(pc, dir)) {
            continue;
        }
        return;     // this direction's spawn check still has teeth
    }
    sc.promote(pc);
}

/** Direction and entry PC of the non-taken edge of a resolved branch. */
inline bool
ntEdgeDir(const sim::StepResult &res)
{
    return !res.branchTaken;
}

inline uint32_t
ntEdgeTarget(const sim::StepResult &res)
{
    return res.branchTaken ? res.branchFallthrough : res.branchTarget;
}

} // namespace engine_detail

} // namespace pe::core

#endif // PE_CORE_ENGINE_IMPL_HH
