/**
 * @file
 * Results of one PathExpander-monitored run.
 */

#ifndef PE_CORE_RESULT_HH
#define PE_CORE_RESULT_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "src/coverage/coverage.hh"
#include "src/detect/report.hh"
#include "src/sim/events.hh"
#include "src/sim/io.hh"

namespace pe::core
{

/** Why an NT-Path stopped (paper Section 4.2, termination rules). */
enum class NtStopCause : uint8_t
{
    MaxLength,          //!< executed MaxNTPathLength instructions
    Crash,              //!< faulted; the exception was swallowed
    UnsafeEvent,        //!< reached an I/O system call
    ProgramEnd,         //!< reached the end of the program
    CapacityOverflow,   //!< write set exceeded the L1 line capacity
    ForcedSquash,       //!< CMP: squashed to unblock a segment commit
    HostAbort,          //!< host watchdog cancelled the whole run
};

const char *ntStopCauseName(NtStopCause cause);

/**
 * Why the monitored run as a whole ended.  `Deadline` is the one
 * host-side cause: the campaign watchdog's cooperative cancellation
 * token fired and the engine returned a partial result instead of
 * hanging its worker.
 */
enum class RunStopCause : uint8_t
{
    Completed,          //!< the program exited (or crashed — see flags)
    Crashed,            //!< taken path crashed (programCrashed is set)
    InstructionLimit,   //!< maxTakenInstructions safety net
    Deadline,           //!< watchdog cancel token; result is partial
};

const char *runStopCauseName(RunStopCause cause);

/** Record of one explored NT-Path. */
struct NtPathRecord
{
    uint32_t spawnBranchPc = 0;
    bool spawnEdgeTaken = false;    //!< direction of the explored edge
    uint64_t length = 0;            //!< instructions executed
    NtStopCause cause = NtStopCause::MaxLength;
    sim::CrashKind crashKind = sim::CrashKind::None;
};

/** Everything a monitored run produced. */
struct RunResult
{
    explicit RunResult(const isa::Program &program) : coverage(program) {}

    // Program outcome.
    bool programCrashed = false;
    sim::CrashKind programCrashKind = sim::CrashKind::None;
    bool hitInstructionLimit = false;

    /**
     * The run was cancelled by the host (campaign job watchdog):
     * every count below covers only the prefix that executed, and
     * stopCause says why the run ended.
     */
    bool aborted = false;
    RunStopCause stopCause = RunStopCause::Completed;

    // Work counts.
    uint64_t takenInstructions = 0;
    uint64_t ntInstructions = 0;

    /**
     * Of takenInstructions, how many retired through the self-pruned
     * superblock loop (cfg.selfPrune).  Purely diagnostic — the
     * bit-identity contract covers every other field, and tests use
     * this one to assert the pruned path actually engaged — so
     * identity comparisons must exclude it.
     */
    uint64_t prunedInstructions = 0;

    /**
     * Taken-path branch-decision stream (cfg.recordEdgeTrace): one
     * (pc << 1) | taken word per executed conditional branch, in
     * execution order, capped at cfg.edgeTraceCap events.  Feeds the
     * prime-path fold (coverage::PathCoverage).  Like
     * prunedInstructions this is a diagnostic/metric channel excluded
     * from bit-identity comparisons of engine results.
     */
    std::vector<uint32_t> branchTrace;
    bool branchTraceTruncated = false;

    /** Record one branch event, honoring @p cap. */
    void recordBranchEvent(uint32_t pc, bool taken, uint32_t cap)
    {
        if (branchTrace.size() < cap)
            branchTrace.push_back((pc << 1) | (taken ? 1u : 0u));
        else
            branchTraceTruncated = true;
    }

    /** Primary-core completion time in cycles. */
    uint64_t cycles = 0;

    // NT-Path statistics.
    uint64_t ntPathsSpawned = 0;
    uint64_t ntPathsSkippedBusy = 0;    //!< CMP: MaxNumNTPaths reached
    std::vector<NtPathRecord> ntRecords;

    // Memory system statistics.
    uint64_t l2ContentionCycles = 0;

    /**
     * CMP option: each core's local clock at completion ([0] is the
     * primary core; idle cores stop advancing when no NT-Path is
     * assigned).  Single-core modes report one entry equal to cycles.
     */
    std::vector<uint64_t> coreCycles;

    detect::MonitorArea monitor;
    coverage::BranchCoverage coverage;
    sim::IoChannel io;

    /**
     * FNV-1a digest of the final main-memory image: lets tests and
     * users verify the sandboxing invariant that PathExpander never
     * perturbs architected state.
     */
    uint64_t memoryDigest = 0;

    /** Fraction of NT-Paths with stop cause @p cause. */
    double ntFraction(NtStopCause cause) const;

    /** Mean executed length of NT-Paths. */
    double ntMeanLength() const;

    /**
     * Print a human-readable run summary (instructions, cycles,
     * NT-Path statistics by stop cause, coverage, distinct reports).
     */
    void printSummary(std::ostream &os) const;
};

} // namespace pe::core

#endif // PE_CORE_RESULT_HH
