/**
 * @file
 * Campaign runner implementation.
 */

#include "src/core/campaign.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>

#include "src/support/status.hh"
#include "src/support/thread_pool.hh"

namespace pe::core
{

namespace
{

RunResult
runJob(const CampaignJob &job)
{
    pe_assert(job.program, "campaign job without a program");
    std::unique_ptr<detect::Detector> detector;
    if (job.detectorFactory)
        detector = job.detectorFactory();
    PathExpanderEngine engine(*job.program, job.config, detector.get());
    return engine.run(job.input);
}

} // namespace

CampaignOutcome
runCampaign(const std::vector<CampaignJob> &jobs,
            const CampaignOptions &opts)
{
    auto start = std::chrono::steady_clock::now();

    CampaignOutcome out;
    size_t threads = opts.threads ? opts.threads : defaultWorkerCount();
    threads = std::min(threads, std::max<size_t>(jobs.size(), 1));
    out.threadsUsed = static_cast<unsigned>(threads);

    if (threads <= 1) {
        out.results.reserve(jobs.size());
        for (const CampaignJob &job : jobs) {
            out.results.push_back(runJob(job));
            if (opts.onResult)
                opts.onResult(out.results.size() - 1,
                              out.results.back());
        }
    } else {
        // Per-job slots keep the output in job order no matter how
        // the pool schedules; a FatalError (bad config/workload) is
        // captured and rethrown once the pool has drained.
        std::vector<std::optional<RunResult>> slots(jobs.size());
        std::mutex mtx;     //!< guards firstError and onResult calls
        std::exception_ptr firstError;
        {
            ThreadPool pool(static_cast<unsigned>(threads));
            for (size_t i = 0; i < jobs.size(); ++i) {
                pool.submit([&jobs, &slots, &mtx, &firstError, &opts,
                             i] {
                    try {
                        slots[i].emplace(runJob(jobs[i]));
                        if (opts.onResult) {
                            std::lock_guard lock(mtx);
                            opts.onResult(i, *slots[i]);
                        }
                    } catch (...) {
                        std::lock_guard lock(mtx);
                        if (!firstError)
                            firstError = std::current_exception();
                    }
                });
            }
            pool.waitIdle();
        }
        if (firstError)
            std::rethrow_exception(firstError);
        out.results.reserve(slots.size());
        for (auto &slot : slots) {
            pe_assert(slot.has_value(), "campaign job lost its result");
            out.results.push_back(std::move(*slot));
        }
    }

    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return out;
}

coverage::BranchCoverage
mergeCoverage(const isa::Program &program,
              const std::vector<RunResult> &results)
{
    coverage::BranchCoverage merged(program);
    for (const RunResult &result : results)
        merged.mergeFrom(result.coverage);
    return merged;
}

} // namespace pe::core
