/**
 * @file
 * Campaign runner implementation: job scheduling, failure policies
 * and the per-job wall-clock watchdog.
 */

#include "src/core/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>

#include "src/support/faultinject.hh"
#include "src/support/status.hh"
#include "src/support/thread_pool.hh"

namespace pe::core
{

namespace
{

RunResult
runJob(const CampaignJob &job, const std::atomic<bool> *cancel)
{
    pe_assert(job.program, "campaign job without a program");
    fault::site("campaign.run_job");
    std::unique_ptr<detect::Detector> detector;
    if (job.detectorFactory)
        detector = job.detectorFactory();
    PathExpanderEngine engine(*job.program, job.config, detector.get());
    return engine.run(job.input, cancel);
}

std::string
describeException(std::exception_ptr ep)
{
    try {
        std::rethrow_exception(ep);
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown exception";
    }
}

/**
 * Per-job wall-clock deadlines, enforced through the engine's
 * cooperative cancellation token.
 *
 * One fixed Watch slot per job (a worker runs one job at a time, so
 * at most `threads` slots are armed at once, but per-job slots make
 * begin/end trivially race-free across retries).  A ticker thread
 * scans the armed slots every few milliseconds and trips the cancel
 * flag of any job past its deadline.  The deadline bookkeeping is
 * mutex-guarded — begin() for a retry attempt cannot race a stale
 * ticker firing for the previous attempt — and only the cancel flag
 * itself is atomic, because the engine reads it lock-free.
 */
class JobWatchdog
{
  public:
    JobWatchdog(std::chrono::milliseconds limit, size_t jobs)
        : watches(jobs), limit(limit),
          poll(std::clamp(limit / 8, std::chrono::milliseconds(1),
                          std::chrono::milliseconds(10))),
          ticker([this] { tickerLoop(); })
    {}

    ~JobWatchdog()
    {
        {
            std::lock_guard lock(mtx);
            stopping = true;
        }
        cv.notify_all();
        ticker.join();
    }

    /** Arm job @p i's deadline; returns its cancel token. */
    const std::atomic<bool> *begin(size_t i)
    {
        Watch &w = watches[i];
        std::lock_guard lock(mtx);
        w.cancel.store(false, std::memory_order_relaxed);
        w.deadline = std::chrono::steady_clock::now() + limit;
        w.armed = true;
        return &w.cancel;
    }

    /** Disarm job @p i's deadline (the run returned or threw). */
    void end(size_t i)
    {
        std::lock_guard lock(mtx);
        watches[i].armed = false;
    }

  private:
    struct Watch
    {
        std::chrono::steady_clock::time_point deadline;
        bool armed = false;
        std::atomic<bool> cancel{false};
    };

    void tickerLoop()
    {
        std::unique_lock lock(mtx);
        while (!stopping) {
            cv.wait_for(lock, poll);
            auto now = std::chrono::steady_clock::now();
            for (Watch &w : watches) {
                if (w.armed && now >= w.deadline) {
                    w.cancel.store(true, std::memory_order_relaxed);
                    w.armed = false;      // fire once per arming
                }
            }
        }
    }

    std::vector<Watch> watches;
    std::chrono::milliseconds limit;
    std::chrono::milliseconds poll;
    std::mutex mtx;
    std::condition_variable cv;
    bool stopping = false;
    std::thread ticker;     //!< last member: starts touching the rest
};

} // namespace

CampaignOutcome
runCampaign(const std::vector<CampaignJob> &jobs,
            const CampaignOptions &opts)
{
    auto start = std::chrono::steady_clock::now();

    const FailPolicy &policy = opts.failPolicy;
    pe_assert(policy.maxAttempts >= 1,
              "FailPolicy::maxAttempts must be at least 1");

    CampaignOutcome out;
    size_t threads = opts.threads ? opts.threads : defaultWorkerCount();
    threads = std::min(threads, std::max<size_t>(jobs.size(), 1));
    out.threadsUsed = static_cast<unsigned>(threads);

    // Per-job slots keep the output in job order no matter how the
    // pool schedules.  All shared failure bookkeeping (slots on
    // write, failures, firstError, the onResult hook) is serialized
    // through one mutex; the jobs themselves run lock-free.
    std::vector<std::optional<RunResult>> slots(jobs.size());
    std::mutex mtx;
    std::exception_ptr firstError;
    bool cancelRest = false;        //!< FailFast tripped
    ThreadPool *poolPtr = nullptr;  //!< set only on the parallel path

    std::unique_ptr<JobWatchdog> watchdog;
    if (opts.jobDeadline.count() > 0) {
        watchdog = std::make_unique<JobWatchdog>(opts.jobDeadline,
                                                 jobs.size());
    }

    // Runs job i to its policy-determined conclusion: a result in
    // slots[i], a JobFailure record, or (FailFast) firstError set.
    // Shared by the serial and the parallel path so the two cannot
    // drift in failure semantics.
    auto runOne = [&](size_t i) {
        {
            std::lock_guard lock(mtx);
            if (cancelRest)
                return;
        }
        for (unsigned attempt = 1;; ++attempt) {
            try {
                const std::atomic<bool> *token =
                    watchdog ? watchdog->begin(i) : nullptr;
                RunResult res = runJob(jobs[i], token);
                if (watchdog)
                    watchdog->end(i);
                std::lock_guard lock(mtx);
                slots[i].emplace(std::move(res));
                if (opts.onResult)
                    opts.onResult(i, *slots[i]);
                return;
            } catch (...) {
                if (watchdog)
                    watchdog->end(i);
                std::string what =
                    describeException(std::current_exception());
                bool retrying = false;
                {
                    std::lock_guard lock(mtx);
                    if (policy.mode == FailMode::Retry &&
                        attempt < policy.maxAttempts) {
                        ++out.suppressedErrors;
                        warn("campaign job ", i, " attempt ", attempt,
                             "/", policy.maxAttempts, " failed: ", what,
                             "; retrying");
                        retrying = true;
                    } else if (policy.mode == FailMode::FailFast) {
                        if (!firstError) {
                            firstError = std::current_exception();
                            cancelRest = true;
                            if (poolPtr) {
                                size_t dropped = poolPtr->cancelPending();
                                if (dropped) {
                                    warn("campaign job ", i,
                                         " failed; cancelled ", dropped,
                                         " queued job(s)");
                                }
                            }
                        } else {
                            ++out.suppressedErrors;
                            warn("campaign job ", i,
                                 " failure suppressed after fail-fast: ",
                                 what);
                        }
                    } else {
                        warn("campaign job ", i, " failed after ",
                             attempt, " attempt(s): ", what);
                        out.failures.push_back(
                            JobFailure{i, attempt, std::move(what)});
                    }
                }
                if (!retrying)
                    return;
                if (policy.backoffMs.count() > 0) {
                    std::this_thread::sleep_for(policy.backoffMs *
                                                attempt);
                }
            }
        }
    };

    if (threads <= 1) {
        for (size_t i = 0; i < jobs.size(); ++i)
            runOne(i);
    } else {
        ThreadPool pool(static_cast<unsigned>(threads));
        poolPtr = &pool;
        for (size_t i = 0; i < jobs.size(); ++i)
            pool.submit([&runOne, i] { runOne(i); });
        pool.waitIdle();
        poolPtr = nullptr;
    }

    if (firstError) {
        if (out.suppressedErrors) {
            warn(out.suppressedErrors, " additional campaign job ",
                 "failure(s) were suppressed after the first");
        }
        std::rethrow_exception(firstError);
    }

    // Failures were pushed in completion order; report in job order.
    std::sort(out.failures.begin(), out.failures.end(),
              [](const JobFailure &a, const JobFailure &b) {
                  return a.jobIndex < b.jobIndex;
              });

    out.results.reserve(slots.size());
    out.resultJobIndex.reserve(slots.size());
    auto failure = out.failures.begin();
    for (size_t i = 0; i < slots.size(); ++i) {
        while (failure != out.failures.end() && failure->jobIndex < i)
            ++failure;
        if (slots[i].has_value()) {
            pe_assert(failure == out.failures.end() ||
                          failure->jobIndex != i,
                      "campaign job has both a result and a failure");
            out.results.push_back(std::move(*slots[i]));
            out.resultJobIndex.push_back(i);
        } else {
            pe_assert(failure != out.failures.end() &&
                          failure->jobIndex == i,
                      "campaign job lost its result");
        }
    }

    out.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return out;
}

coverage::BranchCoverage
mergeCoverage(const isa::Program &program,
              const std::vector<RunResult> &results)
{
    coverage::BranchCoverage merged(program);
    for (const RunResult &result : results)
        merged.mergeFrom(result.coverage);
    return merged;
}

} // namespace pe::core
