/**
 * @file
 * Run-result helpers.
 */

#include "src/core/result.hh"

#include <map>

#include "src/support/strutil.hh"

namespace pe::core
{

const char *
ntStopCauseName(NtStopCause cause)
{
    switch (cause) {
      case NtStopCause::MaxLength: return "max-length";
      case NtStopCause::Crash: return "crash";
      case NtStopCause::UnsafeEvent: return "unsafe-event";
      case NtStopCause::ProgramEnd: return "program-end";
      case NtStopCause::CapacityOverflow: return "capacity-overflow";
      case NtStopCause::ForcedSquash: return "forced-squash";
      case NtStopCause::HostAbort: return "host-abort";
    }
    return "?";
}

const char *
runStopCauseName(RunStopCause cause)
{
    switch (cause) {
      case RunStopCause::Completed: return "completed";
      case RunStopCause::Crashed: return "crashed";
      case RunStopCause::InstructionLimit: return "instruction-limit";
      case RunStopCause::Deadline: return "deadline";
    }
    return "?";
}

double
RunResult::ntFraction(NtStopCause cause) const
{
    if (ntRecords.empty())
        return 0.0;
    size_t n = 0;
    for (const auto &r : ntRecords) {
        if (r.cause == cause)
            ++n;
    }
    return static_cast<double>(n) / static_cast<double>(ntRecords.size());
}

void
RunResult::printSummary(std::ostream &os) const
{
    if (programCrashed) {
        os << "program CRASHED: "
           << sim::crashKindName(programCrashKind) << "\n";
    }
    if (hitInstructionLimit)
        os << "instruction limit reached\n";
    if (aborted) {
        os << "run ABORTED by the host watchdog ("
           << runStopCauseName(stopCause) << "); counts are partial\n";
    }

    os << "instructions: " << takenInstructions << " taken, "
       << ntInstructions << " NT";
    if (prunedInstructions)
        os << " (" << prunedInstructions << " self-pruned)";
    os << "\n"
       << "cycles:       " << cycles << "\n";

    os << "NT-Paths:     " << ntPathsSpawned << " spawned";
    if (ntPathsSkippedBusy)
        os << ", " << ntPathsSkippedBusy << " skipped busy";
    os << "\n";
    if (!ntRecords.empty()) {
        std::map<NtStopCause, uint64_t> byCause;
        for (const auto &rec : ntRecords)
            ++byCause[rec.cause];
        os << "  stop causes:";
        for (const auto &[cause, n] : byCause)
            os << " " << ntStopCauseName(cause) << "=" << n;
        os << "\n  mean length: " << fmtDouble(ntMeanLength(), 1)
           << " instructions\n";
    }

    os << "coverage:     " << fmtPercent(coverage.takenFraction())
       << " taken";
    if (coverage.ntOnlyCovered() > 0) {
        os << ", " << fmtPercent(coverage.combinedFraction())
           << " with NT-Paths";
    }
    os << " (" << coverage.totalEdges() << " edges)\n";

    auto distinct = monitor.distinctReports();
    os << "reports:      " << distinct.size() << " distinct ("
       << monitor.reports().size() << " total)\n";
    for (const auto &rep : distinct) {
        os << "  " << detect::reportKindName(rep.kind) << " at "
           << rep.site;
        if (rep.kind == detect::ReportKind::AssertFail)
            os << " (assert #" << rep.assertId << ")";
        if (rep.fromNtPath)
            os << " [NT-Path]";
        os << "\n";
    }
}

double
RunResult::ntMeanLength() const
{
    if (ntRecords.empty())
        return 0.0;
    uint64_t sum = 0;
    for (const auto &r : ntRecords)
        sum += r.length;
    return static_cast<double>(sum) /
           static_cast<double>(ntRecords.size());
}

} // namespace pe::core
