/**
 * @file
 * PathExpander configuration.
 *
 * Defaults reproduce the paper's experimental setup (Section 6.3):
 * MaxNTPathLength = 1000 instructions (100 for the small Siemens
 * benchmarks), NTPathCounterThreshold = 5, MaxNumNTPaths = 32 for the
 * CMP option, and a 4-core CMP.
 */

#ifndef PE_CORE_CONFIG_HH
#define PE_CORE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/branch/btb.hh"
#include "src/sim/interpreter.hh"
#include "src/sim/timing.hh"

namespace pe::core
{

/** Which PathExpander implementation runs. */
enum class PeMode : uint8_t
{
    Off,        //!< baseline: plain monitored run, no NT-Paths
    Standard,   //!< Figure 4(a): checkpoint, run NT-Path inline, roll back
    Cmp,        //!< Figure 4(b): NT-Paths on idle cores of the CMP
};

const char *peModeName(PeMode mode);

/** Hardware extension vs. PIN-style software implementation. */
enum class CostModelKind : uint8_t
{
    Hardware,   //!< Section 4: the proposed hardware extensions
    Software,   //!< Section 5: dynamic binary instrumentation
};

/**
 * Cycle costs of the PIN-based software implementation (Section 5).
 * Values reflect published dynamic-binary-instrumentation costs: a
 * per-instruction JIT/code-cache dilation, an analysis routine with a
 * hash-table lookup on every branch, processor-state checkpointing
 * through the PIN API, and an old-value restore log for every NT-Path
 * store.
 */
struct SoftwareCostParams
{
    uint64_t perInstructionDilation = 8;
    uint64_t branchAnalysisCost = 250;
    uint64_t checkpointCost = 4000;
    uint64_t ntWriteLogCost = 100;
    uint64_t ntRestorePerWord = 100;
    uint64_t restoreRegsCost = 800;
};

/** Full engine configuration. */
struct PeConfig
{
    PeMode mode = PeMode::Standard;
    CostModelKind costModel = CostModelKind::Hardware;

    /** Termination condition 1: resource bound per NT-Path. */
    uint32_t maxNtPathLength = 1000;

    /** Spawn when the non-taken edge's exercise count is below this. */
    uint8_t ntPathCounterThreshold = 5;

    /** CMP option: bound on outstanding (running + queued) NT-Paths. */
    uint32_t maxNumNtPaths = 32;

    /** Reset the BTB exercise counters every this many instructions. */
    uint64_t counterResetInterval = 1'000'000;

    /**
     * Arm the NT-entry predicate at NT-Path entrances so the
     * compiler's Pfix/Pfixst instructions execute (Section 4.4).
     * Disabled for the "before consistency fixing" runs of Table 5
     * and the Figure 3 latency probes.
     */
    bool variableFixing = true;

    /**
     * Ablation of the Section 4.2 design choice: when true, an
     * NT-Path redirects onto cold non-taken edges at branches it
     * encounters instead of following the actual outcome.
     */
    bool followNonTakenInNt = false;

    /**
     * Extension of the Section 7.1 discussion ("this problem can be
     * addressed by adding random factor into PathExpander's NT-Path
     * selection"): even when an edge's exercise counter has reached
     * the threshold, spawn with this probability.  0 disables the
     * random factor (the paper's prototype).  Deterministic per run.
     */
    double randomSpawnFraction = 0.0;

    /** Seed for the random spawn factor. */
    uint64_t randomSpawnSeed = 0x9e3779b97f4a7c15ull;

    /**
     * Extension of the Section 3.2 discussion: with OS support,
     * unsafe events could be sandboxed too ("more than 90% of
     * NT-Paths may potentially execute up to 1000 instructions").
     * When true, an NT-Path performs I/O against a speculative copy
     * of the I/O channel that is discarded at squash, instead of
     * being terminated by the unsafe event.
     */
    bool sandboxIo = false;

    /** CMP option: total cores (1 primary + idle cores for NT-Paths). */
    int numCores = 4;

    /** Safety net against runaway workloads. */
    uint64_t maxTakenInstructions = 500'000'000;

    /** CMP: force-squash the oldest NT-Path beyond this segment depth. */
    uint32_t maxSegmentDepth = 48;

    /**
     * Functions whose branches never spawn NT-Paths (paper Section
     * 6.2: "we just need to tag those checking functions in advance
     * so that PathExpander does not spawn NT-Paths within them").
     * Our evaluated detectors are single instructions, so this is
     * empty by default; software checkers with instrumented checking
     * routines list them here.
     */
    std::vector<std::string> noSpawnFuncs;

    /**
     * Static spawn pre-filter (src/analysis/priors.hh): at engine
     * construction, mark branch edges whose straight-line NT
     * continuation provably hits a syscall before doing any work, and
     * refuse to spawn those NT-Paths.  Changes which NT-Paths run
     * (the doomed edge's coverage bit is never recorded and its BTB
     * counter never saturates), so it is opt-in and part of
     * configHash().
     */
    bool spawnPreFilter = false;

    /**
     * Self-pruning instrumentation (src/sim/superblock.hh): branches
     * whose instrumentation provably cannot change anything anymore —
     * both coverage bits recorded, every NT spawn statically waived or
     * the consulted counter at its saturation cap — are promoted into
     * a pruned re-decode image and executed by the uninstrumented
     * superblock loop until the next counter reset demotes them.
     * Results are bit-identical by contract
     * (tests/superblock_test.cpp), but the engine only engages the
     * pruned path in regimes where the proof holds (Standard-mode
     * primary path, no random spawn factor, no NT redirect ablation,
     * threshold within the counter range); elsewhere the flag is
     * inert.  Part of configHash() as an engine-behavior input even
     * though accepting identical results, so perf trajectories remain
     * attributable.
     */
    bool selfPrune = false;

    /**
     * Record the taken-path branch-decision stream into
     * RunResult::branchTrace: one (pc << 1) | taken word per executed
     * conditional branch, in order, capped at edgeTraceCap events.
     * Forces every conditional branch to surface from the bulk
     * block-stepped dispatch and disengages self-pruned superblocks
     * (both skip per-branch visibility), so architectural results and
     * cycle accounting are unchanged but the execution strategy is
     * not the fastest one.  Part of configHash() as an
     * engine-behavior input, like selfPrune.
     */
    bool recordEdgeTrace = false;

    /**
     * Cap on recorded branchTrace events per run (~1 MiB at the
     * default); overflow sets RunResult::branchTraceTruncated.
     */
    uint32_t edgeTraceCap = 1u << 18;

    /**
     * Test hook: force the legacy one-instruction-at-a-time
     * execution loop instead of the pre-decoded block-stepped loop
     * (`sim::runBlock`).  The two loops are bit-identical by
     * contract — `tests/block_step_test.cpp` proves it across every
     * workload and a random-program sweep — so this knob selects an
     * execution *strategy*, not a behavior, and is deliberately
     * excluded from configHash().
     */
    bool legacyStepLoop = false;

    sim::MachineLayout layout;
    branch::BtbParams btbParams;
    sim::TimingConfig timing = sim::TimingConfig::standardConfig();
    SoftwareCostParams swCosts;

    /** Paper-default configuration for @p m. */
    static PeConfig forMode(PeMode m);
};

/**
 * FNV-1a digest over every field of @p cfg (including the nested
 * timing, layout, BTB and software-cost parameters).  Two configs
 * hash equal iff they run the engine identically, so benches and the
 * exploration JSONL stamp this into their output to make result
 * trajectories comparable across machines and revisions.
 */
uint64_t configHash(const PeConfig &cfg);

} // namespace pe::core

#endif // PE_CORE_CONFIG_HH
