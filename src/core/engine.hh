/**
 * @file
 * The PathExpander engine.
 *
 * One class runs all four evaluation modes of the paper:
 *
 *  - PeMode::Off       — the baseline monitored run (dynamic checker
 *                        only, no NT-Paths);
 *  - PeMode::Standard  — Figure 4(a): at a selected branch, checkpoint
 *                        the registers, execute the non-taken path in
 *                        the versioned-L1 sandbox, squash and resume;
 *  - PeMode::Cmp       — Figure 4(b): NT-Paths execute on the idle
 *                        cores of the CMP under the tree-structured
 *                        TLS dependence rules with commit/squash
 *                        tokens;
 *  - CostModelKind::Software on top of Standard — the Section 5 PIN
 *    implementation: identical path semantics, dynamic-binary-
 *    instrumentation cost model.
 */

#ifndef PE_CORE_ENGINE_HH
#define PE_CORE_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/analysis/regions.hh"
#include "src/analysis/verify.hh"
#include "src/core/config.hh"
#include "src/core/result.hh"
#include "src/detect/detector.hh"
#include "src/isa/program.hh"
#include "src/sim/decoded.hh"

namespace pe::core
{

/** Runs a program under a PathExpander configuration. */
class PathExpanderEngine
{
  public:
    /**
     * @param detector the dynamic bug detection tool to integrate
     *        with, or nullptr for coverage/overhead-only runs.
     */
    PathExpanderEngine(const isa::Program &program, const PeConfig &config,
                       detect::Detector *detector = nullptr);

    /**
     * Execute the program on @p input; returns all run artifacts.
     *
     * @param cancel optional cooperative cancellation token (the
     *        campaign watchdog's).  Polled with one relaxed atomic
     *        load per dispatch of the execution loop; when it reads
     *        true the run stops at the next dispatch boundary and
     *        returns a partial RunResult flagged `aborted` with
     *        `stopCause == RunStopCause::Deadline`.  Null (the
     *        default) compiles the poll down to one never-taken
     *        branch.
     */
    RunResult run(const std::vector<int32_t> &input,
                  const std::atomic<bool> *cancel = nullptr);

    const PeConfig &config() const { return cfg; }

    /**
     * The program pre-decoded against this engine's timing config:
     * handler kinds, validated static targets, per-instruction costs
     * and the folded no-spawn flags.  Built once at construction and
     * shared read-only by every run.
     */
    const sim::DecodedProgram &decodedProgram() const { return decoded; }

    /**
     * The static verifier's findings for this engine's program.  The
     * verifier runs at construction (memoised process-wide on the
     * program fingerprint — campaigns build thousands of engines for
     * the same image); error-severity findings are surfaced as
     * warnings once per program but never abort, since malformed
     * programs are legal simulator inputs.
     */
    const analysis::VerifyReport &verifyReport() const { return *verified; }

    /**
     * Static saturation eligibility for the self-pruning superblock
     * cache: which branches live in BTB sets that can never evict, so
     * eliding their instrumented increments cannot change a victim
     * choice.  Computed at construction only when cfg.selfPrune is
     * set; empty otherwise.
     */
    const analysis::SaturationEligibility &saturationEligibility() const
    {
        return pruneElig;
    }

    /** Per-run internals; defined in engine_impl.hh (not public API). */
    struct RunState;

  private:
    void runInline(RunState &state);
    void runCmp(RunState &state);

    const isa::Program &program;
    PeConfig cfg;
    detect::Detector *detector;
    sim::DecodedProgram decoded;
    const analysis::VerifyReport *verified;
    analysis::SaturationEligibility pruneElig;
};

/**
 * Convenience: run @p program on @p input in baseline (Off) mode and
 * return the completion time in cycles, for overhead computations.
 */
uint64_t baselineCycles(const isa::Program &program,
                        const std::vector<int32_t> &input,
                        const sim::MachineLayout &layout = {});

} // namespace pe::core

#endif // PE_CORE_ENGINE_HH
