/**
 * @file
 * PathExpander engine: shared helpers, baseline and the standard
 * (inline checkpoint/rollback) configuration.  The CMP driver lives in
 * cmp.cc.
 */

#include "src/core/engine.hh"

#include <mutex>
#include <unordered_set>

#include "src/analysis/priors.hh"
#include "src/checkpoint/checkpoint.hh"
#include "src/core/engine_impl.hh"
#include "src/mem/versioned_buffer.hh"
#include "src/support/status.hh"

namespace pe::core
{

namespace engine_detail
{

uint64_t
chargeStep(const isa::Program &, const PeConfig &cfg,
           PathExpanderEngine::RunState &state,
           detect::Detector *detector, int coreId,
           const sim::StepResult &res, uint64_t now, bool inNt)
{
    uint64_t cycles = sim::opcodeCost(cfg.timing, res.op);

    if (res.memRead || res.memWrite) {
        cycles += state.hierarchy.accessLatency(coreId, res.memAddr,
                                                now + cycles);
        if (detector)
            cycles += detector->memAccessCost();
    }
    if (res.boundsCheck && detector)
        cycles += detector->boundsCheckCost();

    if (softwareCosts(cfg)) {
        const SoftwareCostParams &sw = cfg.swCosts;
        cycles += sw.perInstructionDilation;
        if (res.branch)
            cycles += sw.branchAnalysisCost;
        if (inNt && res.memWrite)
            cycles += sw.ntWriteLogCost;
    }
    return cycles;
}

void
routeEvents(const isa::Program &program, const PeConfig &cfg,
            PathExpanderEngine::RunState &state,
            detect::Detector *detector, detect::ObjectRegistry &registry,
            mem::MemCtx &ctx, const sim::StepResult &res, bool fromNt,
            uint32_t ntSpawnPc)
{
    if (res.registeredObject)
        registry.registerObject(res.objBase, res.objSize, res.objKind);
    if (res.unregisteredObject)
        registry.unregisterObject(res.objBase);

    if (!detector)
        return;
    if (!res.memRead && !res.memWrite && !res.boundsCheck &&
        !res.assertFired) {
        return;
    }

    detect::DetectCtx dctx;
    dctx.program = &program;
    dctx.registry = &registry;
    dctx.monitor = &state.result.monitor;
    dctx.pc = res.pc;
    dctx.fromNtPath = fromNt;
    dctx.ntSpawnPc = ntSpawnPc;
    dctx.dataBase = program.dataBase;
    dctx.heapBase = program.heapBase;
    dctx.heapTop =
        static_cast<uint32_t>(ctx.read(isa::Program::heapPtrCell));
    dctx.stackBase = cfg.layout.heapLimit();
    dctx.memWords = cfg.layout.memWords;

    if (res.boundsCheck)
        detector->onBoundsCheck(dctx, res.checkAddr);
    if (res.memRead)
        detector->onMemAccess(dctx, res.memAddr, false);
    if (res.memWrite)
        detector->onMemAccess(dctx, res.memAddr, true);
    if (res.assertFired)
        detector->onAssert(dctx, res.assertId);
}

} // namespace engine_detail

using namespace engine_detail;

PathExpanderEngine::PathExpanderEngine(const isa::Program &prog,
                                       const PeConfig &config,
                                       detect::Detector *det)
    : program(prog), cfg(config), detector(det),
      decoded(prog, config.timing)
{
    pe_assert(cfg.numCores >= 1, "need at least one core");
    pe_assert(cfg.maxNtPathLength > 0, "MaxNTPathLength must be positive");

    // Resolve the tagged checking functions (Section 6.2) to code
    // ranges once, folded into per-PC no-spawn flags.
    for (const auto &name : cfg.noSpawnFuncs) {
        for (const auto &f : program.funcs) {
            if (f.name == name)
                decoded.markNoSpawn(f.startPc, f.endPc);
        }
    }

    // Static verification at load.  Never aborts — malformed
    // programs are legal inputs (the interpreter raises BadJump and
    // friends) — but error findings are surfaced once per program.
    verified = &analysis::verifyCached(program);
    if (verified->hasErrors()) {
        static std::mutex warnMtx;
        static std::unordered_set<uint64_t> warned;
        const uint64_t fp = analysis::programFingerprint(program);
        std::lock_guard<std::mutex> lock(warnMtx);
        if (warned.insert(fp).second) {
            warn("program '", program.name, "' has ",
                 verified->errorCount(),
                 " static verifier error(s); first: ",
                 analysis::formatDiagnostic(
                     program, verified->diagnostics.front()));
        }
    }

    // Static spawn pre-filter: mark provably-doomed NT edges so
    // shouldSpawn() rejects them in O(1).  Only meaningful while a
    // syscall actually squashes NT-Paths, i.e. without I/O
    // sandboxing.
    if (cfg.spawnPreFilter && !cfg.sandboxIo) {
        const analysis::BranchPriors priors =
            analysis::computeBranchPriors(program, cfg.maxNtPathLength);
        for (const auto &[pc, edges] : priors.branches) {
            if (edges[0].doomed)
                decoded.markDoomedEdge(pc, false);
            if (edges[1].doomed)
                decoded.markDoomedEdge(pc, true);
        }
    }

    // Self-pruning: per-program static eligibility, shared by every
    // run's superblock cache.  Branches in BTB sets that could evict
    // are excluded so skipping their LRU stamps can't change a victim.
    if (cfg.selfPrune) {
        pe_assert(cfg.btbParams.ways > 0 &&
                      cfg.btbParams.entries >= cfg.btbParams.ways,
                  "degenerate BTB geometry");
        pruneElig = analysis::computeSaturationEligibility(
            program, cfg.btbParams.entries / cfg.btbParams.ways,
            cfg.btbParams.ways);
    }
}

RunResult
PathExpanderEngine::run(const std::vector<int32_t> &input,
                        const std::atomic<bool> *cancel)
{
    RunState state(program, cfg);
    state.cancel = cancel;
    state.result.io.input = input;
    sim::loadProgram(program, state.memory, state.primary, cfg.layout);

    if (cfg.mode == PeMode::Cmp)
        runCmp(state);
    else
        runInline(state);

    state.result.l2ContentionCycles =
        state.hierarchy.l2Port().contentionCycles();
    if (state.result.coreCycles.empty())
        state.result.coreCycles.push_back(state.result.cycles);

    // Digest of the architected memory image, for the sandboxing
    // invariant (PathExpander must not perturb it).  Only ever
    // compared run-vs-run, never against stored constants, so the
    // construction is free to favor speed: FNV-1a over 64-bit chunks
    // in four independent lanes.  A single per-word FNV chain is one
    // serial multiply per word — several milliseconds over a 4 MB
    // image, which dominated short monitored runs; the lanes run at
    // load bandwidth instead.
    const auto words = state.memory.words();
    constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
    constexpr uint64_t kFnvPrime = 0x100000001b3ull;
    uint64_t lane[4] = {kFnvOffset, kFnvOffset ^ 1, kFnvOffset ^ 2,
                        kFnvOffset ^ 3};
    size_t n = words.size();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        for (int l = 0; l < 4; ++l) {
            uint64_t chunk =
                static_cast<uint32_t>(words[i + 2 * l]) |
                (static_cast<uint64_t>(
                     static_cast<uint32_t>(words[i + 2 * l + 1]))
                 << 32);
            lane[l] = (lane[l] ^ chunk) * kFnvPrime;
        }
    }
    uint64_t digest = kFnvOffset;
    for (int l = 0; l < 4; ++l)
        digest = (digest ^ lane[l]) * kFnvPrime;
    for (; i < n; ++i)
        digest = (digest ^ static_cast<uint32_t>(words[i])) * kFnvPrime;
    state.result.memoryDigest = digest;
    return std::move(state.result);
}

namespace
{

/**
 * Execute one NT-Path inline on the primary core (standard
 * configuration, Figure 4(a)).
 *
 * The caller has already decided to spawn: the register checkpoint is
 * taken here, execution redirects onto the non-taken edge with the
 * NT-entry predicate optionally armed, all stores go to a fresh
 * versioned buffer, and on termination everything but the monitor
 * area rolls back.
 *
 * @return cycles consumed (charged to the single core, serially).
 */
uint64_t
exploreNtInline(const isa::Program &program, const PeConfig &cfg,
                const sim::DecodedProgram &decoded,
                PathExpanderEngine::RunState &state,
                detect::Detector *detector,
                const sim::StepResult &branchRes, uint64_t startCycle)
{
    RunResult &result = state.result;
    sim::Core &core = state.primary;

    uint64_t cycles = 0;
    const bool sw = softwareCosts(cfg);
    cycles += sw ? cfg.swCosts.checkpointCost : cfg.timing.spawnOverhead;

    auto checkpoint = checkpoint::take(core);

    bool ntDir = ntEdgeDir(branchRes);
    core.pc = ntEdgeTarget(branchRes);
    core.ntEntryPred = cfg.variableFixing;

    mem::VersionedBuffer buf(1);
    mem::MemCtx ctx(state.memory, &buf);
    detect::ObjectRegistry overlay(&state.registry);

    // With the sandboxIo extension the NT-Path runs against a
    // speculative copy of the I/O channel, discarded at squash; the
    // copy is only made when that extension is on.
    sim::IoChannel specIo;
    if (cfg.sandboxIo)
        specIo = result.io;
    sim::IoChannel &ntIo = cfg.sandboxIo ? specIo : result.io;
    const bool allowIo = cfg.sandboxIo;

    result.coverage.onNtEdge(branchRes.pc, ntDir);

    NtPathRecord record;
    record.spawnBranchPc = branchRes.pc;
    record.spawnEdgeTaken = ntDir;

    const uint32_t l1Capacity = state.hierarchy.l1LineCapacity();
    const bool useBlocks = !cfg.legacyStepLoop;
    const uint64_t dilation = blockDilation(cfg);

    for (;;) {
        if (cancelRequested(state)) {
            // The whole run is being cancelled; squash this NT-Path
            // now so the caller sees a consistent (rolled-back)
            // architected state.
            record.cause = NtStopCause::HostAbort;
            break;
        }
        if (record.length >= cfg.maxNtPathLength) {
            record.cause = NtStopCause::MaxLength;
            break;
        }
        if (useBlocks &&
            decoded.startsBlock(core.pc, /*execBranches=*/false,
                                detector == nullptr)) {
            // Straight-line stretch: no StepResult, no engine
            // round-trip.  Block-safe instructions cannot write the
            // versioned buffer, so the capacity check cannot trip
            // mid-block.
            sim::BlockOut blk = sim::runBlock(
                decoded, core,
                blockCap(state, cfg.maxNtPathLength - record.length),
                UINT64_MAX, /*perInstExtra=*/0, nullptr,
                detector == nullptr);
            if (blk.instructions) {
                record.length += blk.instructions;
                result.ntInstructions += blk.instructions;
                cycles += blk.cycles + dilation * blk.instructions;
                continue;   // re-check the length bound first
            }
        }
        sim::StepResult res =
            sim::step(program, core, ctx, ntIo, allowIo, cfg.layout);
        if (res.crashed()) {
            // The exception is swallowed, never delivered to the OS.
            record.cause = NtStopCause::Crash;
            record.crashKind = res.crash;
            break;
        }
        if (res.unsafeEvent) {
            record.cause = NtStopCause::UnsafeEvent;
            break;
        }

        ++record.length;
        ++result.ntInstructions;
        cycles += chargeStep(program, cfg, state, detector, /*core=*/0,
                             res, startCycle + cycles, /*inNt=*/true);
        routeEvents(program, cfg, state, detector, overlay, ctx, res,
                    /*fromNt=*/true, branchRes.pc);

        if (res.exited) {
            record.cause = NtStopCause::ProgramEnd;
            break;
        }

        if (res.branch) {
            bool followed = res.branchTaken;
            if (cfg.followNonTakenInNt &&
                state.btb.count(res.pc, !res.branchTaken) == 0) {
                // Ablation: redirect onto the cold non-taken edge.
                followed = !res.branchTaken;
                core.pc = followed ? res.branchTarget
                                   : res.branchFallthrough;
                state.btb.increment(res.pc, followed);
            }
            result.coverage.onNtEdge(res.pc, followed);
        }

        if (buf.numLines() > l1Capacity) {
            record.cause = NtStopCause::CapacityOverflow;
            break;
        }
    }

    // Squash: gang-invalidate the Vtag lines, restore the checkpoint,
    // drop the registry overlay.  Only the monitor area survives.
    if (sw) {
        cycles += cfg.swCosts.restoreRegsCost +
                  cfg.swCosts.ntRestorePerWord * buf.numWords();
    } else {
        cycles += cfg.timing.squashOverhead;
    }
    checkpoint::restore(core, checkpoint);

    result.ntRecords.push_back(record);
    return cycles;
}

} // namespace

void
PathExpanderEngine::runInline(RunState &state)
{
    RunResult &result = state.result;
    sim::Core &core = state.primary;
    mem::MemCtx ctx(state.memory, nullptr);

    uint64_t &cycles = result.cycles;
    const bool peActive = cfg.mode != PeMode::Off;
    const bool useBlocks = !cfg.legacyStepLoop;
    const uint64_t dilation = blockDilation(cfg);

    // Self-pruning engages only in regimes where the saturation
    // predicate's no-op proof holds (see maybePromote): the Standard
    // main path, no random spawn factor to consume RNG draws at a
    // pruned branch, no NT redirect ablation reading frozen counters
    // from NT-Paths, and a threshold within the counter range so "at
    // cap" really does freeze the spawn compare false.
    // Branch tracing needs every conditional branch to surface from
    // the bulk dispatch paths (blocks run them silently, superblocks
    // even more so); the result bits are unchanged, only the
    // execution strategy slows down.
    const bool traceEdges = cfg.recordEdgeTrace;
    const bool pruneActive =
        useBlocks && peActive && cfg.selfPrune && !traceEdges &&
        cfg.randomSpawnFraction == 0.0 && !cfg.followNonTakenInNt &&
        cfg.ntPathCounterThreshold <= state.btb.maxCount();
    if (pruneActive) {
        state.superblocks = std::make_unique<sim::SuperblockCache>(
            decoded, pruneElig.branchEligible);
    }

    for (;;) {
        if (cancelRequested(state)) {
            result.aborted = true;
            result.stopCause = RunStopCause::Deadline;
            break;
        }
        if (result.takenInstructions >= cfg.maxTakenInstructions) {
            result.hitInstructionLimit = true;
            result.stopCause = RunStopCause::InstructionLimit;
            break;
        }

        // Self-pruned dispatch: the pruned image runs straight-line
        // work *and* promoted (saturated) branches in one loop with
        // no coverage writes, counter bumps or spawn checks.  The
        // budget is clipped to the counter-reset boundary so a reset
        // lands at the exact instruction the per-step loop would
        // reset at — a superblock must not execute branches that
        // belong to the post-reset (demoted) regime.
        if (pruneActive) {
            state.superblocks->syncEpoch(state.btb.resetEpoch());
            if (!core.ntEntryPred &&
                state.superblocks->startsSuper(core.pc,
                                               detector == nullptr)) {
                const uint64_t budget = std::min(
                    cfg.maxTakenInstructions - result.takenInstructions,
                    cfg.counterResetInterval - state.sinceCounterReset);
                sim::SuperOut so = sim::runSuperblock(
                    *state.superblocks, core, blockCap(state, budget),
                    detector == nullptr);
                if (so.instructions) {
                    result.takenInstructions += so.instructions;
                    result.prunedInstructions += so.instructions;
                    state.sinceCounterReset += so.instructions;
                    cycles += so.cycles + dilation * so.instructions;
                    if (softwareCosts(cfg)) {
                        cycles += cfg.swCosts.branchAnalysisCost *
                                  so.branches;
                    }
                    if (state.sinceCounterReset >=
                        cfg.counterResetInterval) {
                        state.btb.resetCounters();
                        state.sinceCounterReset = 0;
                    }
                    continue;   // re-check the instruction limit first
                }
            }
        }

        // With PE off, a branch's whole effect is opcode cost plus a
        // coverage bit, so blocks run straight through them: pass the
        // run's coverage tracker as the in-block branch sink.
        // Likewise Chkb/Assert are inert without a detector.
        const bool branchesInBlock = !peActive && !traceEdges;
        if (useBlocks &&
            decoded.startsBlock(core.pc, branchesInBlock,
                                detector == nullptr)) {
            sim::BlockOut blk = sim::runBlock(
                decoded, core,
                blockCap(state, cfg.maxTakenInstructions -
                                    result.takenInstructions),
                UINT64_MAX, /*perInstExtra=*/0,
                branchesInBlock ? &result.coverage : nullptr,
                detector == nullptr);
            if (blk.instructions) {
                result.takenInstructions += blk.instructions;
                state.sinceCounterReset += blk.instructions;
                cycles += blk.cycles + dilation * blk.instructions;
                // The per-step loop resets the BTB counters at every
                // interval crossing; with no branch (hence no counter
                // bump) inside a block, folding the crossings into
                // one reset plus a modulo is bit-identical.
                if (peActive && state.sinceCounterReset >=
                                    cfg.counterResetInterval) {
                    state.btb.resetCounters();
                    state.sinceCounterReset %= cfg.counterResetInterval;
                }
                continue;   // re-check the instruction limit first
            }
        }

        sim::StepResult res = sim::step(program, core, ctx, result.io,
                                        /*allowIo=*/true, cfg.layout);
        if (res.crashed()) {
            result.programCrashed = true;
            result.programCrashKind = res.crash;
            result.stopCause = RunStopCause::Crashed;
            break;
        }
        pe_assert(!res.unsafeEvent, "unsafe event on the taken path");

        ++result.takenInstructions;
        ++state.sinceCounterReset;
        cycles += chargeStep(program, cfg, state, detector, /*core=*/0,
                             res, cycles, /*inNt=*/false);
        routeEvents(program, cfg, state, detector, state.registry, ctx,
                    res, /*fromNt=*/false, 0);

        if (res.exited)
            break;

        if (res.branch) {
            result.coverage.onTakenEdge(res.pc, res.branchTaken);
            if (traceEdges) {
                result.recordBranchEvent(res.pc, res.branchTaken,
                                         cfg.edgeTraceCap);
            }

            if (peActive) {
                state.btb.increment(res.pc, res.branchTaken);
                bool ntDir = ntEdgeDir(res);
                if (shouldSpawn(cfg, state, decoded, res.pc, ntDir)) {
                    // Exercise counters are also bumped at the entry
                    // of an NT-Path (Section 4.2).
                    state.btb.increment(res.pc, ntDir);
                    ++result.ntPathsSpawned;
                    cycles += exploreNtInline(program, cfg, decoded,
                                              state, detector, res,
                                              cycles);
                }
                // The bookkeeping above may have been the branch's
                // last observable act; if so, hand it to the pruned
                // image.
                if (pruneActive)
                    maybePromote(state, decoded, res.pc);
            }
        }

        if (peActive &&
            state.sinceCounterReset >= cfg.counterResetInterval) {
            state.btb.resetCounters();
            state.sinceCounterReset = 0;
        }
    }
}

uint64_t
baselineCycles(const isa::Program &program,
               const std::vector<int32_t> &input,
               const sim::MachineLayout &layout)
{
    PeConfig cfg = PeConfig::forMode(PeMode::Off);
    cfg.layout = layout;
    PathExpanderEngine engine(program, cfg, nullptr);
    return engine.run(input).cycles;
}

} // namespace pe::core
