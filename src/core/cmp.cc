/**
 * @file
 * The CMP optimization (paper Section 4.3, Figure 4(b) and Figure 6).
 *
 * NT-Paths execute on the idle cores of the CMP while the primary
 * core continues on the taken path.  The taken path is cut into
 * segments at every spawn point; segments and NT-Paths form the
 * tree-structured version order of Figure 6(c):
 *
 *  - each path reads its own buffer, then its ancestor segments,
 *    then committed memory;
 *  - a segment commits only with a commit token from its parent
 *    segment and a squash token from its sibling NT-Path (the one
 *    spawned at the branch where the segment began);
 *  - when the segment chain must shrink (the paper's dirty-line
 *    displacement case), the oldest blocking NT-Path is squashed
 *    immediately so the taken path never stalls.
 *
 * Timing: every core has its own cycle clock; the scheduler always
 * advances the globally least-advanced active core, so cross-core
 * interleaving and shared L2/memory port contention are modeled.
 * Spawning charges the primary core the register-copy overhead
 * (Table 2: 20 cycles); squash charges the NT core (10 cycles).
 */

#include <deque>
#include <memory>

#include "src/core/engine_impl.hh"
#include "src/mem/versioned_buffer.hh"
#include "src/support/status.hh"

namespace pe::core
{

using namespace engine_detail;

namespace
{

/** One NT-Path in flight (running on a core or queued). */
struct NtTask
{
    sim::Core cpu;
    uint32_t spawnPc = 0;
    bool ntDir = false;
    uint64_t spawnTime = 0;         //!< primary time at spawn
    std::unique_ptr<mem::VersionedBuffer> buf;
    std::unique_ptr<detect::ObjectRegistry> overlay;
    std::unique_ptr<sim::IoChannel> specIo; //!< sandboxIo extension
    int core = -1;                  //!< executing core, or -1 if queued
    uint64_t length = 0;
    bool done = false;
    NtStopCause cause = NtStopCause::MaxLength;
    sim::CrashKind crashKind = sim::CrashKind::None;
};

/** One uncommitted taken-path segment. */
struct Segment
{
    std::unique_ptr<mem::VersionedBuffer> buf;
    NtTask *sibling = nullptr;      //!< must squash before we commit
};

/** Scheduler and version-management state of one CMP run. */
struct CmpState
{
    std::vector<uint64_t> coreTime;             //!< per-core clocks
    std::vector<NtTask *> onCore;               //!< core -> task
    std::vector<std::unique_ptr<NtTask>> tasks; //!< all spawned tasks
    std::deque<NtTask *> queue;                 //!< spawned, no core yet
    std::deque<Segment> segments;               //!< oldest first
    int nextPathId = 1;

    size_t outstanding() const
    {
        size_t n = 0;
        for (const auto &t : tasks) {
            if (!t->done)
                ++n;
        }
        return n;
    }

    int allocPathId()
    {
        int id = nextPathId;
        nextPathId = nextPathId % 255 + 1;  // 8-bit IDs, 0 reserved
        return id;
    }
};

} // namespace

void
PathExpanderEngine::runCmp(RunState &state)
{
    RunResult &result = state.result;
    sim::Core &primary = state.primary;

    CmpState cmp;
    cmp.coreTime.assign(cfg.numCores, 0);
    cmp.onCore.assign(cfg.numCores, nullptr);

    const uint32_t l1Capacity = state.hierarchy.l1LineCapacity();
    const bool useBlocks = !cfg.legacyStepLoop;
    const uint64_t dilation = blockDilation(cfg);

    auto currentPrimaryBuf = [&]() -> mem::VersionedBuffer * {
        return cmp.segments.empty() ? nullptr
                                    : cmp.segments.back().buf.get();
    };

    // Fix up children when a committed segment's buffer disappears.
    auto reparentChildrenOf = [&](mem::VersionedBuffer *dead,
                                  mem::VersionedBuffer *replacement) {
        for (auto &seg : cmp.segments) {
            if (seg.buf->parent() == dead)
                seg.buf->setParent(replacement);
        }
        for (auto &t : cmp.tasks) {
            if (!t->done && t->buf->parent() == dead)
                t->buf->setParent(replacement);
        }
    };

    // Commit every leading segment whose tokens are available.
    auto tryCommit = [&]() {
        while (!cmp.segments.empty()) {
            Segment &front = cmp.segments.front();
            if (front.sibling && !front.sibling->done)
                break;  // waiting for the squash token
            front.buf->commitTo(state.memory);
            reparentChildrenOf(front.buf.get(), front.buf->parent());
            cmp.segments.pop_front();
        }
    };

    auto finishNt = [&](NtTask &task, NtStopCause cause,
                        sim::CrashKind crashKind) {
        task.done = true;
        task.cause = cause;
        task.crashKind = crashKind;

        NtPathRecord record;
        record.spawnBranchPc = task.spawnPc;
        record.spawnEdgeTaken = task.ntDir;
        record.length = task.length;
        record.cause = cause;
        record.crashKind = crashKind;
        result.ntRecords.push_back(record);

        if (task.core >= 0) {
            int c = task.core;
            // Gang-invalidation of the path's tagged lines.
            cmp.coreTime[c] += cfg.timing.squashOverhead;
            cmp.onCore[c] = nullptr;
            task.core = -1;
            // Hand the freed core to the oldest queued NT-Path.
            while (!cmp.queue.empty()) {
                NtTask *next = cmp.queue.front();
                cmp.queue.pop_front();
                if (next->done)
                    continue;
                next->core = c;
                cmp.onCore[c] = next;
                cmp.coreTime[c] =
                    std::max(cmp.coreTime[c], next->spawnTime) +
                    cfg.timing.spawnOverhead;
                break;
            }
        }
        tryCommit();
    };

    // Squash the oldest NT-Path blocking the segment chain.
    auto forceSquashOldest = [&]() {
        for (auto &seg : cmp.segments) {
            if (seg.sibling && !seg.sibling->done) {
                finishNt(*seg.sibling, NtStopCause::ForcedSquash,
                         sim::CrashKind::None);
                return;
            }
        }
    };

    auto spawn = [&](const sim::StepResult &branchRes) {
        if (cmp.outstanding() >= cfg.maxNumNtPaths) {
            ++result.ntPathsSkippedBusy;
            return;
        }
        bool ntDir = ntEdgeDir(branchRes);
        state.btb.increment(branchRes.pc, ntDir);
        ++result.ntPathsSpawned;
        result.coverage.onNtEdge(branchRes.pc, ntDir);

        auto task = std::make_unique<NtTask>();
        task->cpu = primary;  // fast register copy, core to core
        task->cpu.pc = ntEdgeTarget(branchRes);
        task->cpu.ntEntryPred = cfg.variableFixing;
        task->spawnPc = branchRes.pc;
        task->ntDir = ntDir;
        task->spawnTime = cmp.coreTime[0];
        task->buf =
            std::make_unique<mem::VersionedBuffer>(cmp.allocPathId());
        task->buf->setParent(currentPrimaryBuf());
        task->overlay =
            std::make_unique<detect::ObjectRegistry>(&state.registry);
        if (cfg.sandboxIo) {
            task->specIo =
                std::make_unique<sim::IoChannel>(result.io);
        }

        // Cut the taken path: a new segment begins after the branch;
        // its sibling is the NT-Path just spawned.
        Segment seg;
        seg.buf =
            std::make_unique<mem::VersionedBuffer>(cmp.allocPathId());
        seg.buf->setParent(currentPrimaryBuf());
        seg.sibling = task.get();
        cmp.segments.push_back(std::move(seg));

        // The primary core pays the register-copy spawn overhead.
        cmp.coreTime[0] += cfg.timing.spawnOverhead;

        // Place on an idle core, or queue in a free thread context.
        int idle = -1;
        for (int c = 1; c < cfg.numCores; ++c) {
            if (!cmp.onCore[c]) {
                idle = c;
                break;
            }
        }
        if (idle >= 0) {
            task->core = idle;
            cmp.onCore[idle] = task.get();
            cmp.coreTime[idle] = std::max(cmp.coreTime[idle],
                                          cmp.coreTime[0]);
        } else {
            cmp.queue.push_back(task.get());
        }
        cmp.tasks.push_back(std::move(task));

        if (cmp.segments.size() > cfg.maxSegmentDepth)
            forceSquashOldest();
    };

    auto stepNt = [&](int c) {
        NtTask &task = *cmp.onCore[c];
        if (task.length >= cfg.maxNtPathLength) {
            finishNt(task, NtStopCause::MaxLength, sim::CrashKind::None);
            return;
        }
        if (useBlocks &&
            decoded.startsBlock(task.cpu.pc, /*execBranches=*/false,
                                detector == nullptr)) {
            // Straight-line stretch on the NT core: register-only
            // work, so no shared state (BTB, hierarchy, buffers,
            // coverage) moves until the next surfacing instruction.
            // The cycle budget stops the block exactly where the
            // least-advanced-core scheduler would stop picking this
            // core (strict inequality against lower-indexed cores,
            // which win clock ties), so every instruction retires at
            // the same position in the global step order as under
            // the per-step loop — in particular, the instruction
            // count at a later force-squash is identical.
            uint64_t bound = cmp.coreTime[0] - 1;
            for (int j = 1; j < cfg.numCores; ++j) {
                if (j == c || !cmp.onCore[j])
                    continue;
                uint64_t b = j < c ? cmp.coreTime[j] - 1
                                   : cmp.coreTime[j];
                if (b < bound)
                    bound = b;
            }
            sim::BlockOut blk = sim::runBlock(
                decoded, task.cpu,
                blockCap(state, cfg.maxNtPathLength - task.length),
                bound - cmp.coreTime[c], dilation, nullptr,
                detector == nullptr);
            if (blk.instructions) {
                task.length += blk.instructions;
                result.ntInstructions += blk.instructions;
                cmp.coreTime[c] +=
                    blk.cycles + dilation * blk.instructions;
                return;
            }
        }
        mem::MemCtx ctx(state.memory, task.buf.get());
        sim::IoChannel &ntIo =
            task.specIo ? *task.specIo : result.io;
        sim::StepResult res = sim::step(program, task.cpu, ctx, ntIo,
                                        /*allowIo=*/cfg.sandboxIo,
                                        cfg.layout);
        if (res.crashed()) {
            finishNt(task, NtStopCause::Crash, res.crash);
            return;
        }
        if (res.unsafeEvent) {
            finishNt(task, NtStopCause::UnsafeEvent,
                     sim::CrashKind::None);
            return;
        }

        ++task.length;
        ++result.ntInstructions;
        cmp.coreTime[c] +=
            chargeStep(program, cfg, state, detector, c, res,
                       cmp.coreTime[c], /*inNt=*/true);
        routeEvents(program, cfg, state, detector, *task.overlay, ctx,
                    res, /*fromNt=*/true, task.spawnPc);

        if (res.exited) {
            finishNt(task, NtStopCause::ProgramEnd,
                     sim::CrashKind::None);
            return;
        }
        if (res.branch) {
            bool followed = res.branchTaken;
            if (cfg.followNonTakenInNt &&
                state.btb.count(res.pc, !res.branchTaken) == 0) {
                followed = !res.branchTaken;
                task.cpu.pc = followed ? res.branchTarget
                                       : res.branchFallthrough;
                state.btb.increment(res.pc, followed);
            }
            result.coverage.onNtEdge(res.pc, followed);
        }
        if (task.buf->numLines() > l1Capacity)
            finishNt(task, NtStopCause::CapacityOverflow,
                     sim::CrashKind::None);
    };

    bool primaryDone = false;
    auto stepPrimary = [&]() {
        if (result.takenInstructions >= cfg.maxTakenInstructions) {
            result.hitInstructionLimit = true;
            result.stopCause = RunStopCause::InstructionLimit;
            primaryDone = true;
            return;
        }
        if (useBlocks &&
            decoded.startsBlock(primary.pc, /*execBranches=*/false,
                                detector == nullptr)) {
            // Straight-line stretch on the primary.  The cycle
            // budget keeps the primary within the span where the
            // scheduler would keep picking it (the primary wins
            // clock ties), so no NT-core step is displaced.  The
            // block itself makes no shared-state mutation, and
            // within its span every active NT clock is >= the
            // primary's, so no other actor can observe the BTB
            // between a mid-block reset point and the block end —
            // folding the resets into one modular reset afterwards
            // is exact.
            uint64_t budget = UINT64_MAX;
            for (int c = 1; c < cfg.numCores; ++c) {
                if (cmp.onCore[c] && cmp.coreTime[c] < budget)
                    budget = cmp.coreTime[c];
            }
            if (budget != UINT64_MAX)
                budget -= cmp.coreTime[0];
            sim::BlockOut blk = sim::runBlock(
                decoded, primary,
                blockCap(state, cfg.maxTakenInstructions -
                                    result.takenInstructions),
                budget, dilation, nullptr, detector == nullptr);
            if (blk.instructions) {
                result.takenInstructions += blk.instructions;
                state.sinceCounterReset += blk.instructions;
                cmp.coreTime[0] +=
                    blk.cycles + dilation * blk.instructions;
                if (state.sinceCounterReset >=
                    cfg.counterResetInterval) {
                    state.btb.resetCounters();
                    state.sinceCounterReset %=
                        cfg.counterResetInterval;
                }
                return;
            }
        }
        mem::MemCtx ctx(state.memory, currentPrimaryBuf());
        sim::StepResult res = sim::step(program, primary, ctx, result.io,
                                        /*allowIo=*/true, cfg.layout);
        if (res.crashed()) {
            result.programCrashed = true;
            result.programCrashKind = res.crash;
            result.stopCause = RunStopCause::Crashed;
            primaryDone = true;
            return;
        }
        pe_assert(!res.unsafeEvent, "unsafe event on the taken path");

        ++result.takenInstructions;
        ++state.sinceCounterReset;
        cmp.coreTime[0] +=
            chargeStep(program, cfg, state, detector, 0, res,
                       cmp.coreTime[0], /*inNt=*/false);
        routeEvents(program, cfg, state, detector, state.registry, ctx,
                    res, /*fromNt=*/false, 0);

        if (res.exited) {
            primaryDone = true;
            return;
        }
        if (res.branch) {
            result.coverage.onTakenEdge(res.pc, res.branchTaken);
            if (cfg.recordEdgeTrace) {
                result.recordBranchEvent(res.pc, res.branchTaken,
                                         cfg.edgeTraceCap);
            }
            state.btb.increment(res.pc, res.branchTaken);
            if (shouldSpawn(cfg, state, decoded, res.pc, ntEdgeDir(res)))
                spawn(res);
        }
        if (state.sinceCounterReset >= cfg.counterResetInterval) {
            state.btb.resetCounters();
            state.sinceCounterReset = 0;
        }
        tryCommit();
    };

    while (!primaryDone) {
        if (cancelRequested(state)) {
            result.aborted = true;
            result.stopCause = RunStopCause::Deadline;
            break;
        }
        // Advance the least-advanced active core.
        int next = 0;
        for (int c = 1; c < cfg.numCores; ++c) {
            if (cmp.onCore[c] && cmp.coreTime[c] < cmp.coreTime[next])
                next = c;
        }
        if (next == 0)
            stepPrimary();
        else
            stepNt(next);
    }

    // Program ended: outstanding NT-Paths are squashed and the
    // remaining segments drain into memory.
    for (auto &t : cmp.tasks) {
        if (!t->done)
            finishNt(*t, NtStopCause::ForcedSquash,
                     sim::CrashKind::None);
    }
    tryCommit();
    pe_assert(cmp.segments.empty(), "uncommitted segments at exit");

    result.cycles = cmp.coreTime[0];
    result.coreCycles = cmp.coreTime;
}

} // namespace pe::core
