/**
 * @file
 * Branch target buffer extended with PathExpander's per-edge exercise
 * counters.
 *
 * The paper (Section 4.1/4.2) extends each BTB entry with two 4-bit
 * exercise counters, one per branch edge, recording how often that
 * edge has executed.  PathExpander spawns an NT-Path on a non-taken
 * edge whose counter is below NTPathCounterThreshold.  Counters are
 * periodically reset (every CounterResetInterval instructions) so that
 * long-running programs keep exploring, and a BTB miss is treated as
 * an exercise count of zero.
 */

#ifndef PE_BRANCH_BTB_HH
#define PE_BRANCH_BTB_HH

#include <cstdint>
#include <vector>

namespace pe::branch
{

/** BTB geometry and counter parameters. */
struct BtbParams
{
    uint32_t entries = 2048;    //!< Table 2: 2K entries
    uint32_t ways = 2;          //!< Table 2: 2-way
    uint8_t counterBits = 4;    //!< saturating exercise counters
};

/** 2-way BTB whose entries carry two saturating exercise counters. */
class Btb
{
  public:
    explicit Btb(const BtbParams &params = BtbParams{});

    /**
     * Exercise count of edge (@p pc, @p edgeTaken).
     * A miss reads as zero, as the paper specifies.
     */
    uint8_t count(uint32_t pc, bool edgeTaken) const;

    /**
     * Record one execution (or NT-Path entry) of the edge; allocates
     * the entry on a miss, evicting LRU.
     */
    void increment(uint32_t pc, bool edgeTaken);

    /** Periodic counter reset (CounterResetInterval). */
    void resetCounters();

    /**
     * True when edge (@p pc, @p edgeTaken)'s exercise counter sits at
     * the saturation value, i.e. further increments cannot change it.
     * The self-pruning saturation predicate's counter leg; unlike
     * count() it does not touch the lookup statistics, so probing for
     * saturation leaves the BTB's observable counters untouched.
     */
    bool atCap(uint32_t pc, bool edgeTaken) const
    {
        const Entry *e = find(pc);
        return e && e->cnt[edgeTaken ? 1 : 0] == saturation;
    }

    /**
     * Monotone counter-reset epoch: bumped by every resetCounters()
     * call.  Caches keyed on frozen counter values (the superblock
     * cache) compare this per dispatch and invalidate lazily when a
     * reset has intervened.
     */
    uint64_t resetEpoch() const { return epoch; }

    uint8_t maxCount() const { return saturation; }
    uint64_t lookups() const { return lookupCount; }
    uint64_t missesOnLookup() const { return lookupMisses; }
    uint64_t evictions() const { return evictionCount; }

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t pc = 0;
        uint8_t cnt[2] = {0, 0};    //!< [0]=not-taken edge, [1]=taken
        uint64_t lastUse = 0;
    };

    Entry *find(uint32_t pc);
    const Entry *find(uint32_t pc) const;
    Entry *allocate(uint32_t pc);
    uint32_t setOf(uint32_t pc) const { return pc % numSets; }

    BtbParams params;
    uint32_t numSets;
    uint8_t saturation;
    std::vector<Entry> entries;
    uint64_t useClock = 0;
    uint64_t epoch = 0;
    mutable uint64_t lookupCount = 0;
    mutable uint64_t lookupMisses = 0;
    uint64_t evictionCount = 0;
};

} // namespace pe::branch

#endif // PE_BRANCH_BTB_HH
