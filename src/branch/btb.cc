/**
 * @file
 * BTB implementation.
 */

#include "src/branch/btb.hh"

#include "src/support/status.hh"

namespace pe::branch
{

Btb::Btb(const BtbParams &p) : params(p)
{
    pe_assert(p.entries % p.ways == 0, "entries not divisible by ways");
    pe_assert(p.counterBits >= 1 && p.counterBits <= 8,
              "counter bits out of range");
    numSets = p.entries / p.ways;
    saturation = static_cast<uint8_t>((1u << p.counterBits) - 1);
    entries.resize(p.entries);
}

Btb::Entry *
Btb::find(uint32_t pc)
{
    Entry *base = &entries[static_cast<size_t>(setOf(pc)) * params.ways];
    for (uint32_t w = 0; w < params.ways; ++w) {
        if (base[w].valid && base[w].pc == pc)
            return &base[w];
    }
    return nullptr;
}

const Btb::Entry *
Btb::find(uint32_t pc) const
{
    return const_cast<Btb *>(this)->find(pc);
}

Btb::Entry *
Btb::allocate(uint32_t pc)
{
    Entry *base = &entries[static_cast<size_t>(setOf(pc)) * params.ways];
    Entry *victim = base;
    for (uint32_t w = 0; w < params.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim->valid)
        ++evictionCount;
    *victim = Entry{};
    victim->valid = true;
    victim->pc = pc;
    return victim;
}

uint8_t
Btb::count(uint32_t pc, bool edgeTaken) const
{
    ++lookupCount;
    const Entry *e = find(pc);
    if (!e) {
        ++lookupMisses;
        return 0;   // BTB miss == exercise count of zero
    }
    return e->cnt[edgeTaken ? 1 : 0];
}

void
Btb::increment(uint32_t pc, bool edgeTaken)
{
    Entry *e = find(pc);
    if (!e)
        e = allocate(pc);
    e->lastUse = ++useClock;
    uint8_t &c = e->cnt[edgeTaken ? 1 : 0];
    if (c < saturation)
        ++c;
}

void
Btb::resetCounters()
{
    for (auto &e : entries) {
        e.cnt[0] = 0;
        e.cnt[1] = 0;
    }
    ++epoch;
}

} // namespace pe::branch
