/**
 * @file
 * Versioned write buffers: the simulator model of the paper's
 * Vtag-tagged L1 cache lines.
 *
 * In the standard configuration, an NT-Path's stores are buffered in
 * the L1 cache and bookmarked with a 1-bit Volatile tag; squashing the
 * path gang-invalidates those lines (paper Section 4.2).  With the CMP
 * optimization every path (taken-path segment or NT-Path) owns an
 * 8-bit path ID and its lines are tagged with it (Section 4.3).
 *
 * Functionally both reduce to the same thing: an overlay of dirty
 * words on top of a parent version.  VersionedBuffer implements that
 * overlay; the path-ID plumbing and the commit/squash-token protocol
 * live in the PathExpander engine.
 */

#ifndef PE_MEM_VERSIONED_BUFFER_HH
#define PE_MEM_VERSIONED_BUFFER_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "src/mem/main_memory.hh"

namespace pe::mem
{

/** Words per cache line (32 bytes / 4-byte words, per Table 2). */
constexpr uint32_t wordsPerLine = 8;

/** One path's speculative write set. */
class VersionedBuffer
{
  public:
    /** @param id the 8-bit path ID (0 is reserved for committed). */
    explicit VersionedBuffer(int id) : _pathId(id) {}

    int pathId() const { return _pathId; }

    const VersionedBuffer *parent() const { return _parent; }
    VersionedBuffer *parent() { return _parent; }
    void setParent(VersionedBuffer *p) { _parent = p; }

    /** The buffered value of @p addr, if this path wrote it. */
    std::optional<int32_t> lookup(uint32_t addr) const;

    /** Buffer a store of @p value to @p addr. */
    void write(uint32_t addr, int32_t value);

    /** Number of distinct words written. */
    size_t numWords() const { return words.size(); }

    /** Number of distinct L1 lines holding this path's dirty data. */
    size_t numLines() const { return lines.size(); }

    /** Commit: drain the write set into main memory (lazy ID recycle). */
    void commitTo(MainMemory &main) const;

    /** Squash: gang-invalidate all tagged lines. */
    void clear();

    const std::unordered_map<uint32_t, int32_t> &writes() const
    {
        return words;
    }

  private:
    int _pathId;
    VersionedBuffer *_parent = nullptr;
    std::unordered_map<uint32_t, int32_t> words;
    std::unordered_set<uint32_t> lines;
};

/**
 * A path's view of memory: its own buffer (if any), then its ancestor
 * buffers, then committed main memory.  This is the tree-structured
 * data dependence of Figure 6(c): a path reads data produced or
 * propagated by its parent segments, and updates made after its parent
 * segment are invisible to it.
 */
class MemCtx
{
  public:
    MemCtx(MainMemory &main, VersionedBuffer *buffer)
        : mainMem(&main), buf(buffer)
    {}

    bool valid(uint32_t addr) const { return mainMem->valid(addr); }

    /** Read through the version chain. */
    int32_t read(uint32_t addr) const;

    /** Write to the path's buffer, or directly to main if none. */
    void write(uint32_t addr, int32_t value);

    VersionedBuffer *buffer() { return buf; }
    const VersionedBuffer *buffer() const { return buf; }

  private:
    MainMemory *mainMem;
    VersionedBuffer *buf;
};

} // namespace pe::mem

#endif // PE_MEM_VERSIONED_BUFFER_HH
