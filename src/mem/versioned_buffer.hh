/**
 * @file
 * Versioned write buffers: the simulator model of the paper's
 * Vtag-tagged L1 cache lines.
 *
 * In the standard configuration, an NT-Path's stores are buffered in
 * the L1 cache and bookmarked with a 1-bit Volatile tag; squashing the
 * path gang-invalidates those lines (paper Section 4.2).  With the CMP
 * optimization every path (taken-path segment or NT-Path) owns an
 * 8-bit path ID and its lines are tagged with it (Section 4.3).
 *
 * Functionally both reduce to the same thing: an overlay of dirty
 * words on top of a parent version.  VersionedBuffer implements that
 * overlay; the path-ID plumbing and the commit/squash-token protocol
 * live in the PathExpander engine.
 *
 * The overlay is stored the way the modeled hardware stores it: as
 * whole L1 lines.  An open-addressing table maps a line number to an
 * 8-word data block plus a dirty-word mask, so the per-store hot path
 * is one probe (no per-word hashing), squash is a gang reset of the
 * table, and commit is a linear scan over the occupied lines.
 */

#ifndef PE_MEM_VERSIONED_BUFFER_HH
#define PE_MEM_VERSIONED_BUFFER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "src/mem/main_memory.hh"

namespace pe::mem
{

/** Words per cache line (32 bytes / 4-byte words, per Table 2). */
constexpr uint32_t wordsPerLine = 8;

/** One path's speculative write set. */
class VersionedBuffer
{
  public:
    /** @param id the 8-bit path ID (0 is reserved for committed). */
    explicit VersionedBuffer(int id) : _pathId(id) {}

    int pathId() const { return _pathId; }

    const VersionedBuffer *parent() const { return _parent; }
    VersionedBuffer *parent() { return _parent; }
    void setParent(VersionedBuffer *p) { _parent = p; }

    /** The buffered value of @p addr, if this path wrote it. */
    std::optional<int32_t> lookup(uint32_t addr) const
    {
        if (const Line *line = find(addr / wordsPerLine)) {
            uint32_t w = addr % wordsPerLine;
            if (line->mask & (1u << w))
                return line->data[w];
        }
        return std::nullopt;
    }

    /** Buffer a store of @p value to @p addr. */
    void write(uint32_t addr, int32_t value);

    /** Number of distinct words written. */
    size_t numWords() const { return wordCount; }

    /** Number of distinct L1 lines holding this path's dirty data. */
    size_t numLines() const { return lineCount; }

    /** Commit: drain the write set into main memory (lazy ID recycle). */
    void commitTo(MainMemory &main) const;

    /** Squash: gang-invalidate all tagged lines. */
    void clear();

    /** Visit every buffered (addr, value) pair, line by line. */
    template <typename Fn>
    void forEachWrite(Fn &&fn) const
    {
        for (const Line &line : table) {
            if (line.tag == emptyTag)
                continue;
            for (uint32_t w = 0; w < wordsPerLine; ++w) {
                if (line.mask & (1u << w))
                    fn(line.tag * wordsPerLine + w, line.data[w]);
            }
        }
    }

  private:
    /** One dirty L1 line: tag, valid-word mask and data block. */
    struct Line
    {
        uint32_t tag = emptyTag;    //!< line number (addr / wordsPerLine)
        uint8_t mask = 0;           //!< which words the path wrote
        int32_t data[wordsPerLine];
    };

    static constexpr uint32_t emptyTag = 0xffffffffu;
    static constexpr size_t initialSlots = 16;

    static size_t slotOf(uint32_t tag, size_t tableSize)
    {
        // Fibonacci hashing; tableSize is a power of two.
        return (tag * 0x9e3779b1u) & (tableSize - 1);
    }

    const Line *find(uint32_t tag) const;
    Line &findOrInsert(uint32_t tag);
    void grow();

    int _pathId;
    VersionedBuffer *_parent = nullptr;
    std::vector<Line> table;        //!< open-addressed, power-of-two size
    size_t lineCount = 0;
    size_t wordCount = 0;
};

/**
 * A path's view of memory: its own buffer (if any), then its ancestor
 * buffers, then committed main memory.  This is the tree-structured
 * data dependence of Figure 6(c): a path reads data produced or
 * propagated by its parent segments, and updates made after its parent
 * segment are invisible to it.
 */
class MemCtx
{
  public:
    MemCtx(MainMemory &main, VersionedBuffer *buffer)
        : mainMem(&main), buf(buffer)
    {}

    bool valid(uint32_t addr) const { return mainMem->valid(addr); }

    /** Read through the version chain; @p addr must be valid. */
    int32_t read(uint32_t addr) const;

    /** Write to the path's buffer, or directly to main if none. */
    void write(uint32_t addr, int32_t value);

    /**
     * Bounds-checked read: false (and @p out untouched) when @p addr
     * is outside memory.  Folds the valid() test into the access so
     * the interpreter's load path checks the address exactly once.
     */
    bool tryRead(uint32_t addr, int32_t &out) const
    {
        if (!mainMem->valid(addr))
            return false;
        out = readResolved(addr);
        return true;
    }

    /** Bounds-checked write; false when @p addr is outside memory. */
    bool tryWrite(uint32_t addr, int32_t value)
    {
        if (!mainMem->valid(addr))
            return false;
        writeResolved(addr, value);
        return true;
    }

    VersionedBuffer *buffer() { return buf; }
    const VersionedBuffer *buffer() const { return buf; }

  private:
    /** Read @p addr already known to be in bounds. */
    int32_t readResolved(uint32_t addr) const
    {
        for (const VersionedBuffer *b = buf; b; b = b->parent()) {
            if (auto v = b->lookup(addr))
                return *v;
        }
        return mainMem->words()[addr];
    }

    void writeResolved(uint32_t addr, int32_t value)
    {
        if (buf)
            buf->write(addr, value);
        else
            mainMem->words()[addr] = value;
    }

    MainMemory *mainMem;
    VersionedBuffer *buf;
};

} // namespace pe::mem

#endif // PE_MEM_VERSIONED_BUFFER_HH
