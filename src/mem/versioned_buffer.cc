/**
 * @file
 * Versioned buffer implementation.
 */

#include "src/mem/versioned_buffer.hh"

#include "src/support/status.hh"

namespace pe::mem
{

const VersionedBuffer::Line *
VersionedBuffer::find(uint32_t tag) const
{
    if (table.empty())
        return nullptr;
    size_t slot = slotOf(tag, table.size());
    for (;;) {
        const Line &line = table[slot];
        if (line.tag == tag)
            return &line;
        if (line.tag == emptyTag)
            return nullptr;
        slot = (slot + 1) & (table.size() - 1);
    }
}

VersionedBuffer::Line &
VersionedBuffer::findOrInsert(uint32_t tag)
{
    if (table.empty() || (lineCount + 1) * 4 > table.size() * 3)
        grow();
    size_t slot = slotOf(tag, table.size());
    for (;;) {
        Line &line = table[slot];
        if (line.tag == tag)
            return line;
        if (line.tag == emptyTag) {
            line.tag = tag;
            ++lineCount;
            return line;
        }
        slot = (slot + 1) & (table.size() - 1);
    }
}

void
VersionedBuffer::grow()
{
    std::vector<Line> old = std::move(table);
    size_t newSize = old.empty() ? initialSlots : old.size() * 2;
    table.assign(newSize, Line{});
    for (const Line &line : old) {
        if (line.tag == emptyTag)
            continue;
        size_t slot = slotOf(line.tag, newSize);
        while (table[slot].tag != emptyTag)
            slot = (slot + 1) & (newSize - 1);
        table[slot] = line;
    }
}

void
VersionedBuffer::write(uint32_t addr, int32_t value)
{
    Line &line = findOrInsert(addr / wordsPerLine);
    uint32_t w = addr % wordsPerLine;
    uint8_t bit = static_cast<uint8_t>(1u << w);
    if (!(line.mask & bit)) {
        line.mask |= bit;
        ++wordCount;
    }
    line.data[w] = value;
}

void
VersionedBuffer::commitTo(MainMemory &main) const
{
    // Distinct words only, so the final image is independent of the
    // table's iteration order.
    std::span<int32_t> image = main.words();
    for (const Line &line : table) {
        if (line.tag == emptyTag)
            continue;
        uint64_t base = uint64_t{line.tag} * wordsPerLine;
        for (uint32_t w = 0; w < wordsPerLine; ++w) {
            if (line.mask & (1u << w)) {
                pe_assert(base + w < image.size(),
                          "commit out of range: ", base + w);
                image[base + w] = line.data[w];
            }
        }
    }
}

void
VersionedBuffer::clear()
{
    // Gang-invalidate: drop every line but keep the table storage so a
    // reused path ID does not re-pay the growth.
    for (Line &line : table) {
        line.tag = emptyTag;
        line.mask = 0;
    }
    lineCount = 0;
    wordCount = 0;
}

int32_t
MemCtx::read(uint32_t addr) const
{
    pe_assert(mainMem->valid(addr), "MemCtx read out of range: ", addr);
    return readResolved(addr);
}

void
MemCtx::write(uint32_t addr, int32_t value)
{
    pe_assert(mainMem->valid(addr), "MemCtx write out of range: ", addr);
    writeResolved(addr, value);
}

} // namespace pe::mem
