/**
 * @file
 * Versioned buffer implementation.
 */

#include "src/mem/versioned_buffer.hh"

#include "src/support/status.hh"

namespace pe::mem
{

std::optional<int32_t>
VersionedBuffer::lookup(uint32_t addr) const
{
    auto it = words.find(addr);
    if (it == words.end())
        return std::nullopt;
    return it->second;
}

void
VersionedBuffer::write(uint32_t addr, int32_t value)
{
    words[addr] = value;
    lines.insert(addr / wordsPerLine);
}

void
VersionedBuffer::commitTo(MainMemory &main) const
{
    for (const auto &[addr, value] : words)
        main.write(addr, value);
}

void
VersionedBuffer::clear()
{
    words.clear();
    lines.clear();
}

int32_t
MemCtx::read(uint32_t addr) const
{
    pe_assert(mainMem->valid(addr), "MemCtx read out of range: ", addr);
    for (const VersionedBuffer *b = buf; b; b = b->parent()) {
        if (auto v = b->lookup(addr))
            return *v;
    }
    return mainMem->read(addr);
}

void
MemCtx::write(uint32_t addr, int32_t value)
{
    pe_assert(mainMem->valid(addr), "MemCtx write out of range: ", addr);
    if (buf)
        buf->write(addr, value);
    else
        mainMem->write(addr, value);
}

} // namespace pe::mem
