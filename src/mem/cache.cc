/**
 * @file
 * Cache timing model implementation.
 */

#include "src/mem/cache.hh"

#include <algorithm>
#include <bit>

#include "src/support/status.hh"

namespace pe::mem
{

Cache::Cache(const CacheGeometry &g) : geom(g)
{
    pe_assert(g.lineBytes >= 4 && g.lineBytes % 4 == 0,
              "line size must be a multiple of a word");
    pe_assert(g.numLines() % g.ways == 0, "lines not divisible by ways");
    wordsPerLineLocal = g.lineBytes / 4;
    numSetsLocal = geom.numSets();
    ways.resize(static_cast<size_t>(numSetsLocal) * geom.ways);

    pow2 = std::has_single_bit(wordsPerLineLocal) &&
           std::has_single_bit(numSetsLocal);
    if (pow2) {
        lineShift = static_cast<uint32_t>(
            std::countr_zero(wordsPerLineLocal));
        setShift = static_cast<uint32_t>(std::countr_zero(numSetsLocal));
        setMask = numSetsLocal - 1;
    }
}

bool
Cache::access(uint32_t wordAddr)
{
    uint32_t set, tag;
    indexOf(wordAddr, set, tag);
    Way *base = &ways[static_cast<size_t>(set) * geom.ways];
    ++useClock;

    for (uint32_t w = 0; w < geom.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = useClock;
            ++hitCount;
            return true;
        }
    }

    // Miss: fill the LRU (or first invalid) way.
    ++missCount;
    Way *victim = base;
    for (uint32_t w = 0; w < geom.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    return false;
}

bool
Cache::contains(uint32_t wordAddr) const
{
    uint32_t set, tag;
    indexOf(wordAddr, set, tag);
    const Way *base = &ways[static_cast<size_t>(set) * geom.ways];
    for (uint32_t w = 0; w < geom.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::invalidateAll()
{
    std::fill(ways.begin(), ways.end(), Way{});
}

uint64_t
SharedPort::acquire(uint64_t now, uint64_t hold)
{
    uint64_t start = std::max(now, freeAt);
    waited += start - now;
    freeAt = start + hold;
    return start;
}

void
SharedPort::reset()
{
    freeAt = 0;
    waited = 0;
}

} // namespace pe::mem
