/**
 * @file
 * Flat word-addressed main memory.
 */

#ifndef PE_MEM_MAIN_MEMORY_HH
#define PE_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <span>
#include <vector>

namespace pe::mem
{

/**
 * The architected memory image: committed state only.  Uncommitted
 * path state (NT-Paths and, in CMP mode, taken-path segments) lives in
 * VersionedBuffer overlays on top of this.
 */
class MainMemory
{
  public:
    explicit MainMemory(uint32_t words);

    bool valid(uint32_t addr) const { return addr < image.size(); }
    uint32_t size() const { return static_cast<uint32_t>(image.size()); }

    int32_t read(uint32_t addr) const;
    void write(uint32_t addr, int32_t value);

    /**
     * The whole image as a span, for callers that have already
     * established bounds (bulk program load, digests, line commits)
     * and must not pay a per-word validity check.
     */
    std::span<const int32_t> words() const { return image; }
    std::span<int32_t> words() { return image; }

  private:
    std::vector<int32_t> image;
};

} // namespace pe::mem

#endif // PE_MEM_MAIN_MEMORY_HH
