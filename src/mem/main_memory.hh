/**
 * @file
 * Flat word-addressed main memory.
 */

#ifndef PE_MEM_MAIN_MEMORY_HH
#define PE_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <vector>

namespace pe::mem
{

/**
 * The architected memory image: committed state only.  Uncommitted
 * path state (NT-Paths and, in CMP mode, taken-path segments) lives in
 * VersionedBuffer overlays on top of this.
 */
class MainMemory
{
  public:
    explicit MainMemory(uint32_t words);

    bool valid(uint32_t addr) const { return addr < image.size(); }
    uint32_t size() const { return static_cast<uint32_t>(image.size()); }

    int32_t read(uint32_t addr) const;
    void write(uint32_t addr, int32_t value);

  private:
    std::vector<int32_t> image;
};

} // namespace pe::mem

#endif // PE_MEM_MAIN_MEMORY_HH
