/**
 * @file
 * Memory hierarchy timing implementation.
 */

#include "src/mem/hierarchy.hh"

#include "src/support/status.hh"

namespace pe::mem
{

CacheGeometry
defaultL1Geometry()
{
    return CacheGeometry{16 * 1024, 4, 32};
}

CacheGeometry
defaultL2Geometry()
{
    return CacheGeometry{1024 * 1024, 8, 32};
}

MemHierarchy::MemHierarchy(int numCores, const CacheGeometry &l1Geom,
                           const CacheGeometry &l2Geom,
                           const MemTimingParams &p)
    : l2(l2Geom), params(p)
{
    pe_assert(numCores >= 1, "need at least one core");
    for (int i = 0; i < numCores; ++i)
        l1s.push_back(std::make_unique<Cache>(l1Geom));
}

MemHierarchy::MemHierarchy(int numCores, const MemTimingParams &p)
    : MemHierarchy(numCores, defaultL1Geometry(), defaultL2Geometry(), p)
{}

uint64_t
MemHierarchy::accessLatency(int core, uint32_t wordAddr, uint64_t now)
{
    Cache &l1 = *l1s.at(core);
    if (l1.access(wordAddr))
        return params.l1HitLatency;

    // L1 miss: arbitrate for the shared L2 port.
    uint64_t l2Start =
        l2port.acquire(now + params.l1HitLatency, params.l2PortHold);
    if (l2.access(wordAddr))
        return (l2Start - now) + params.l2HitLatency;

    // L2 miss: arbitrate for the memory bus.
    uint64_t memStart =
        membus.acquire(l2Start + params.l2HitLatency, params.memPortHold);
    return (memStart - now) + params.memLatency;
}

void
MemHierarchy::invalidateL1(int core)
{
    l1s.at(core)->invalidateAll();
}

uint32_t
MemHierarchy::l1LineCapacity() const
{
    return l1s.front()->geometry().numLines();
}

} // namespace pe::mem
