/**
 * @file
 * Two-level memory hierarchy timing (Table 2 of the paper):
 * per-core L1 (16KB, 4-way, 32B lines, 3-cycle latency; 2 cycles in
 * the single-core standard configuration), shared L2 (1MB, 8-way, 32B
 * lines, 10 cycles) behind a single port, and 200-cycle main memory
 * behind a bus.
 */

#ifndef PE_MEM_HIERARCHY_HH
#define PE_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "src/mem/cache.hh"

namespace pe::mem
{

/** Latency and port parameters of the hierarchy. */
struct MemTimingParams
{
    uint64_t l1HitLatency = 3;
    uint64_t l2HitLatency = 10;
    uint64_t memLatency = 200;
    uint64_t l2PortHold = 2;
    uint64_t memPortHold = 10;
};

/** Table-2 L1 geometry. */
CacheGeometry defaultL1Geometry();

/** Table-2 L2 geometry. */
CacheGeometry defaultL2Geometry();

/** Per-core L1s over a shared, single-ported L2 and memory bus. */
class MemHierarchy
{
  public:
    MemHierarchy(int numCores, const CacheGeometry &l1Geom,
                 const CacheGeometry &l2Geom,
                 const MemTimingParams &params);

    /** Convenience: Table-2 geometry. */
    MemHierarchy(int numCores, const MemTimingParams &params);

    /**
     * Model a data access by @p core to @p wordAddr issued at cycle
     * @p now; updates cache and port state.
     * @return the access latency in cycles (including port waits).
     */
    uint64_t accessLatency(int core, uint32_t wordAddr, uint64_t now);

    /** Gang-invalidate a core's L1 (NT-Path squash). */
    void invalidateL1(int core);

    Cache &l1(int core) { return *l1s.at(core); }
    Cache &l2Cache() { return l2; }
    const SharedPort &l2Port() const { return l2port; }
    const SharedPort &memPort() const { return membus; }

    /** L1 line capacity: the hard bound on an NT-Path's write set. */
    uint32_t l1LineCapacity() const;

  private:
    std::vector<std::unique_ptr<Cache>> l1s;
    Cache l2;
    SharedPort l2port;
    SharedPort membus;
    MemTimingParams params;
};

} // namespace pe::mem

#endif // PE_MEM_HIERARCHY_HH
