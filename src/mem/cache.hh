/**
 * @file
 * Set-associative cache timing model and shared-resource ports.
 *
 * These model *time only*.  Correctness of speculative data lives in
 * VersionedBuffer; the Cache answers "hit or miss?" so the engine can
 * charge the Table-2 latencies, and SharedPort serializes accesses to
 * the shared L2 and the memory bus so NT-Path cores contend with the
 * primary core (the source of most of the CMP option's < 9.9%
 * overhead besides spawns).
 */

#ifndef PE_MEM_CACHE_HH
#define PE_MEM_CACHE_HH

#include <cstdint>
#include <vector>

namespace pe::mem
{

/** Geometry of one cache level. */
struct CacheGeometry
{
    uint32_t sizeBytes;
    uint32_t ways;
    uint32_t lineBytes;

    uint32_t numLines() const { return sizeBytes / lineBytes; }
    uint32_t numSets() const { return numLines() / ways; }
};

/** LRU set-associative cache (tag store only). */
class Cache
{
  public:
    explicit Cache(const CacheGeometry &geom);

    /**
     * Access the line containing word address @p wordAddr.
     * @return true on hit.  On miss the line is filled (LRU victim).
     */
    bool access(uint32_t wordAddr);

    /** Probe without side effects. */
    bool contains(uint32_t wordAddr) const;

    void invalidateAll();

    uint64_t hits() const { return hitCount; }
    uint64_t misses() const { return missCount; }
    const CacheGeometry &geometry() const { return geom; }

  private:
    struct Way
    {
        bool valid = false;
        uint32_t tag = 0;
        uint64_t lastUse = 0;
    };

    /** Split @p wordAddr into its set index and tag. */
    void indexOf(uint32_t wordAddr, uint32_t &set, uint32_t &tag) const
    {
        if (pow2) {
            uint32_t line = wordAddr >> lineShift;
            set = line & setMask;
            tag = line >> setShift;
        } else {
            uint32_t line = wordAddr / wordsPerLineLocal;
            set = line % numSetsLocal;
            tag = line / numSetsLocal;
        }
    }

    CacheGeometry geom;
    uint32_t wordsPerLineLocal;
    uint32_t numSetsLocal;
    // Every Table-2 geometry is power-of-two shaped, so the per-access
    // set/tag split is shift/mask; odd test geometries take the exact
    // div/mod path instead.
    bool pow2 = false;
    uint32_t lineShift = 0;
    uint32_t setShift = 0;
    uint32_t setMask = 0;
    std::vector<Way> ways;      //!< numSets * geom.ways entries
    uint64_t useClock = 0;
    uint64_t hitCount = 0;
    uint64_t missCount = 0;
};

/**
 * A single-ported shared resource (the L2 port, the memory bus).
 * An access requested at @p now starts when the port frees up and
 * occupies it for @p hold cycles.
 */
class SharedPort
{
  public:
    /** @return the cycle at which the access begins. */
    uint64_t acquire(uint64_t now, uint64_t hold);

    uint64_t busyUntil() const { return freeAt; }
    uint64_t contentionCycles() const { return waited; }
    void reset();

  private:
    uint64_t freeAt = 0;
    uint64_t waited = 0;
};

} // namespace pe::mem

#endif // PE_MEM_CACHE_HH
