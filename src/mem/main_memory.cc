/**
 * @file
 * Main memory implementation.
 */

#include "src/mem/main_memory.hh"

#include "src/support/status.hh"

namespace pe::mem
{

MainMemory::MainMemory(uint32_t words) : image(words, 0)
{
    pe_assert(words > 0, "zero-sized memory");
}

int32_t
MainMemory::read(uint32_t addr) const
{
    pe_assert(valid(addr), "main memory read out of range: ", addr);
    return image[addr];
}

void
MainMemory::write(uint32_t addr, int32_t value)
{
    pe_assert(valid(addr), "main memory write out of range: ", addr);
    image[addr] = value;
}

} // namespace pe::mem
