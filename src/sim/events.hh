/**
 * @file
 * The event record produced by executing one instruction.
 *
 * The interpreter is policy-free: it reports everything interesting
 * that happened (branch resolution, memory traffic, detector hooks,
 * crashes, I/O attempts) and the PathExpander engine decides what to
 * do (update BTB counters, spawn NT-Paths, invoke detectors, charge
 * cache latencies, terminate paths).
 */

#ifndef PE_SIM_EVENTS_HH
#define PE_SIM_EVENTS_HH

#include <cstdint>

#include "src/isa/opcode.hh"
#include "src/isa/program.hh"

namespace pe::sim
{

/** Why an instruction crashed. */
enum class CrashKind : uint8_t
{
    None = 0,
    DivByZero,
    BadAddress,     //!< load/store outside the address space
    BadJump,        //!< control transfer outside the code segment
    HeapOverflow,   //!< bump allocator exhausted
};

const char *crashKindName(CrashKind kind);

/** Everything the engine needs to know about one executed step. */
struct StepResult
{
    /** PC of the instruction that executed. */
    uint32_t pc = 0;
    isa::Opcode op = isa::Opcode::Nop;

    /** Crash: the instruction faulted; PC was not advanced. */
    CrashKind crash = CrashKind::None;
    bool crashed() const { return crash != CrashKind::None; }

    /** SYS Exit executed: the program (or NT-Path) reached its end. */
    bool exited = false;

    /**
     * A non-Exit syscall was attempted while I/O was disallowed
     * (i.e. on an NT-Path): the unsafe event of Section 3.2.  The
     * side effect was NOT performed and PC was not advanced.
     */
    bool unsafeEvent = false;

    /** Conditional branch resolved. */
    bool branch = false;
    bool branchTaken = false;
    uint32_t branchTarget = 0;      //!< target if taken
    uint32_t branchFallthrough = 0; //!< pc+1

    /** Data memory traffic (for cache timing and watchpoint checks). */
    bool memRead = false;
    bool memWrite = false;
    uint32_t memAddr = 0;

    /** Compiler-inserted bounds-check hook (Chkb). */
    bool boundsCheck = false;
    uint32_t checkAddr = 0;

    /** Assertion evaluated false. */
    bool assertFired = false;
    int32_t assertId = 0;

    /** Object (un)registration for the dynamic checkers. */
    bool registeredObject = false;
    bool unregisteredObject = false;
    uint32_t objBase = 0;
    uint32_t objSize = 0;
    isa::ObjectKind objKind = isa::ObjectKind::GlobalArray;

    /** Heap allocation performed. */
    bool allocated = false;
    uint32_t allocBase = 0;
    uint32_t allocSize = 0;
};

} // namespace pe::sim

#endif // PE_SIM_EVENTS_HH
