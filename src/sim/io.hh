/**
 * @file
 * Program I/O channel.
 *
 * Input is a pre-supplied stream of words (the test case); output is
 * collected for inspection.  I/O system calls are exactly the "unsafe
 * events" of the paper: they cannot be sandboxed without OS support,
 * so an NT-Path is squashed when it reaches one (the interpreter is
 * told whether I/O is currently allowed).
 */

#ifndef PE_SIM_IO_HH
#define PE_SIM_IO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pe::sim
{

/** Input stream plus captured output of one run. */
struct IoChannel
{
    std::vector<int32_t> input;
    size_t inputPos = 0;

    std::vector<int32_t> intOutput;
    std::string charOutput;

    /** Next input word, or -1 at end of input. */
    int32_t readWord()
    {
        if (inputPos >= input.size())
            return -1;
        return input[inputPos++];
    }

    bool atEof() const { return inputPos >= input.size(); }

    void printInt(int32_t v)
    {
        intOutput.push_back(v);
        charOutput += std::to_string(v);
    }

    void printChar(int32_t v)
    {
        charOutput.push_back(static_cast<char>(v & 0xff));
    }
};

} // namespace pe::sim

#endif // PE_SIM_IO_HH
