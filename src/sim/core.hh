/**
 * @file
 * One simulated CPU core: architectural registers, PC and the
 * PathExpander NT-entry predicate register (paper Section 4.4).
 */

#ifndef PE_SIM_CORE_HH
#define PE_SIM_CORE_HH

#include <array>
#include <cstdint>

#include "src/isa/regs.hh"

namespace pe::sim
{

/** Architectural state of a core. */
struct Core
{
    std::array<int32_t, isa::numRegs> regs{};
    uint32_t pc = 0;

    /**
     * The special predicate register: set by hardware when execution
     * is redirected onto an NT-Path, cleared at the first non-fixing
     * instruction.  While set, Pfix/Pfixst execute; otherwise they
     * behave as NOPs.
     */
    bool ntEntryPred = false;

    /** Read a register; r0 always reads zero. */
    int32_t readReg(uint8_t r) const
    {
        return r == isa::reg::zero ? 0 : regs[r];
    }

    /** Write a register; writes to r0 are ignored. */
    void writeReg(uint8_t r, int32_t v)
    {
        if (r != isa::reg::zero)
            regs[r] = v;
    }
};

} // namespace pe::sim

#endif // PE_SIM_CORE_HH
