/**
 * @file
 * The pre-decoded program and the block-stepped execution loop.
 *
 * Every simulated instruction used to pay the full `sim::step()` tax:
 * a cold switch over `isa::Opcode`, per-step branch-target
 * revalidation, construction of a fat `StepResult` and an engine
 * round-trip even when nothing detector-relevant happened.  The
 * decode layer moves everything that is knowable once per program out
 * of the per-step path:
 *
 *  - each `isa::Instruction` is classified into a HandlerKind once;
 *  - static branch/jump targets are validated at decode time;
 *  - the per-opcode base cycle cost is precomputed per instruction;
 *  - the engine's no-spawn function ranges are folded into a per-PC
 *    flag, so the spawn decision is one bit test instead of a linear
 *    range scan.
 *
 * `runBlock()` then executes straight-line work — ALU, immediates,
 * unconditional jumps, predicated fixes — in a tight dispatch loop
 * (computed goto under GCC/Clang, switch fallback) without
 * materializing a StepResult, and stops *before* the first
 * instruction the engine must observe: conditional branches, memory
 * ops, detector ops (Chkb/Assert/Regobj/Unregobj/Alloc), syscalls and
 * anything that can crash.  Those surface to the unchanged slim-path
 * semantics (`sim::step` plus the engine's event routing), so results
 * are bit-identical to the legacy per-step loop by construction.
 *
 * One opt-in extension of that boundary: when PathExpander is off, a
 * conditional branch's entire architectural effect is its opcode cost
 * plus one branch-coverage bit — no BTB update, no spawn decision, no
 * detector or software-cost interaction.  A caller in that regime may
 * pass a BranchCoverage sink and the loop executes statically valid
 * conditional branches in-block too, recording edges exactly as the
 * engine would.  With no sink (any PE-on context), branches surface
 * as before.
 */

#ifndef PE_SIM_DECODED_HH
#define PE_SIM_DECODED_HH

#include <cstdint>
#include <vector>

#include "src/isa/program.hh"
#include "src/sim/core.hh"
#include "src/sim/timing.hh"

namespace pe::coverage
{
class BranchCoverage;
}

namespace pe::sim
{

/**
 * How the block loop executes one instruction.  `Surface` marks
 * everything the loop refuses to execute (the engine runs it through
 * `sim::step` instead): memory traffic, conditional branches,
 * detector hooks, syscalls, statically invalid jump targets and
 * unknown opcodes.  The enumerators are dense: they index the
 * computed-goto table.
 */
enum class HandlerKind : uint8_t
{
    Surface = 0,
    Nop,
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr, Sra,
    Slt, Sle, Seq, Sne, Sgt, Sge,
    Addi, Andi, Ori, Xori, Shli, Shri, Slti, Li,
    Jmp,        //!< statically valid target only
    Jal,        //!< statically valid target only
    Jr,         //!< target checked at run time; invalid surfaces
    Pfix,       //!< predicated fix: executes only at an NT entrance
    Pfixst,     //!< surfaces while the predicate is set (memory write)
    // Detector hooks that are architecturally inert when no detector
    // is attached (chargeStep and routeEvents both gate on one):
    // in-block they retire as opcode-cost NOPs iff the caller says
    // the run has no detector; otherwise they surface.
    Chkb, Assert,
    // Conditional branches (statically valid target only).  They
    // execute in-block only when the caller provides a
    // branch-coverage sink, and surface otherwise.
    Beq, Bne, Blt, Bge, Ble, Bgt,
    NumHandlerKinds
};

/** One pre-decoded instruction (16 bytes; hot-loop friendly). */
struct DecodedInst
{
    int32_t imm = 0;
    uint32_t cost = 0;          //!< opcodeCost(timing, op), precomputed
    HandlerKind kind = HandlerKind::Surface;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    uint8_t flags = 0;

    static constexpr uint8_t FlagNoSpawn = 1u << 0;
    /** Static priors: spawning this branch's fall-through-direction
     *  NT-Path is provably useless (immediate syscall). */
    static constexpr uint8_t FlagDoomedFall = 1u << 1;
    /** Same, for the taken-direction NT-Path. */
    static constexpr uint8_t FlagDoomedTaken = 1u << 2;
};

// The decoded array is the hottest data structure in the simulator:
// both runBlock and runSuperblock stream it.  Pin the 16-byte layout
// so a future field can't silently fatten every program image and
// halve the instructions per cache line.
static_assert(sizeof(DecodedInst) == 16,
              "DecodedInst must stay 16 bytes (hot-loop array)");

/**
 * A program decoded once per engine against a fixed TimingConfig.
 * Read-only after construction (plus markNoSpawn calls), so one
 * instance is safely shared by every run of the owning engine.
 */
class DecodedProgram
{
  public:
    DecodedProgram() = default;

    /** Decode @p program's code against @p timing. */
    DecodedProgram(const isa::Program &program,
                   const TimingConfig &timing);

    /** Fold a no-spawn function range [@p startPc, @p endPc) in. */
    void markNoSpawn(uint32_t startPc, uint32_t endPc);

    /** True when branches at @p pc must not spawn NT-Paths. */
    bool noSpawn(uint32_t pc) const
    {
        return pc < insts.size() &&
               (insts[pc].flags & DecodedInst::FlagNoSpawn) != 0;
    }

    /** Mark @p pc's @p takenDir NT edge as statically doomed. */
    void markDoomedEdge(uint32_t pc, bool takenDir)
    {
        if (pc < insts.size()) {
            insts[pc].flags |= takenDir ? DecodedInst::FlagDoomedTaken
                                        : DecodedInst::FlagDoomedFall;
        }
    }

    /** True when the spawn pre-filter rejects @p pc's @p takenDir edge. */
    bool doomedEdge(uint32_t pc, bool takenDir) const
    {
        const uint8_t flag = takenDir ? DecodedInst::FlagDoomedTaken
                                      : DecodedInst::FlagDoomedFall;
        return pc < insts.size() && (insts[pc].flags & flag) != 0;
    }

    /**
     * True when the instruction at @p pc can start a block — the
     * engine's cheap pre-check that skips the runBlock call entirely
     * on surfacing-dense stretches (a zero-instruction call costs a
     * prologue and a writeback for nothing).  runBlock itself remains
     * correct without it.  @p execBranches mirrors whether the caller
     * will pass a branch-coverage sink and @p inertChecks whether the
     * run has no detector: only then do conditional branches
     * (respectively Chkb/Assert) start a block.
     */
    bool startsBlock(uint32_t pc, bool execBranches = false,
                     bool inertChecks = false) const
    {
        if (pc >= insts.size())
            return false;
        HandlerKind k = insts[pc].kind;
        if (k == HandlerKind::Surface)
            return false;
        if (k < HandlerKind::Chkb)
            return true;
        return k < HandlerKind::Beq ? inertChecks : execBranches;
    }

    uint32_t size() const { return static_cast<uint32_t>(insts.size()); }
    const DecodedInst *data() const { return insts.data(); }

  private:
    std::vector<DecodedInst> insts;
};

/** What one runBlock call retired in bulk. */
struct BlockOut
{
    uint64_t instructions = 0;  //!< straight-line instructions executed
    uint64_t cycles = 0;        //!< their summed base opcode cost
};

/**
 * Execute consecutive block-safe instructions starting at
 * @p core.pc, stopping *before* the first instruction that must
 * surface to the engine and after at most @p maxInstructions.
 *
 * The returned cycle total is the exact sum of the executed
 * instructions' base opcode costs — the same value the legacy loop
 * accumulates through `chargeStep` for these instructions, which add
 * no memory-hierarchy or detector time.  The engine adds the
 * software-cost-model per-instruction dilation on top when that
 * model is active.
 *
 * @p cycleBudget bounds the *effective* cycles (base cost plus
 * @p perInstExtra per instruction) the block may consume: an
 * instruction starts only while the effective cycles retired so far
 * are <= the budget.  This is how the CMP driver reproduces its
 * least-advanced-core scheduling exactly: a core may keep executing
 * precisely while its clock would still make it the scheduler's pick,
 * and the other cores' clocks are frozen while it runs, so a budget
 * computed once at dispatch is exact, not conservative.  The first
 * instruction is always within budget (the caller was just picked).
 *
 * On return `core.pc` rests on the first unexecuted instruction and
 * the NT-entry predicate has been maintained exactly as the per-step
 * loop would have (cleared at the first non-fixing instruction;
 * leading Pfix instructions execute their writes).
 *
 * @p branchSink, when non-null, opts conditional branches into the
 * block: each executed branch records its edge via
 * `branchSink->onTakenEdge(pc, taken)` and redirects, charging only
 * its base opcode cost.  Valid only in a regime where that is the
 * branch's whole effect — PathExpander off, where the engine neither
 * bumps BTB counters nor considers spawning.  When null (every PE-on
 * caller), branches surface untouched.
 *
 * @p inertChecks, when true, asserts the run carries no detector, in
 * which case Chkb and Assert retire in-block as opcode-cost NOPs:
 * every consumer of their events (detector latency in chargeStep,
 * onBoundsCheck/onAssert dispatch in routeEvents) is gated on a
 * detector being present.  When false they surface.
 */
BlockOut runBlock(const DecodedProgram &decoded, Core &core,
                  uint64_t maxInstructions,
                  uint64_t cycleBudget = UINT64_MAX,
                  uint64_t perInstExtra = 0,
                  coverage::BranchCoverage *branchSink = nullptr,
                  bool inertChecks = false);

} // namespace pe::sim

#endif // PE_SIM_DECODED_HH
