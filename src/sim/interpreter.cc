/**
 * @file
 * PE-RISC interpreter implementation.
 */

#include "src/sim/interpreter.hh"

#include <algorithm>
#include <span>

#include "src/isa/regs.hh"
#include "src/sim/arith.hh"
#include "src/support/status.hh"

namespace pe::sim
{

const char *
crashKindName(CrashKind kind)
{
    switch (kind) {
      case CrashKind::None: return "none";
      case CrashKind::DivByZero: return "div-by-zero";
      case CrashKind::BadAddress: return "bad-address";
      case CrashKind::BadJump: return "bad-jump";
      case CrashKind::HeapOverflow: return "heap-overflow";
    }
    return "?";
}

void
loadProgram(const isa::Program &program, mem::MainMemory &memory,
            Core &core, const MachineLayout &layout)
{
    pe_assert(program.dataBase + program.dataInit.size() <=
                  layout.heapLimit(),
              "data segment does not fit below the heap limit");
    pe_assert(program.heapBase >= program.dataBase +
                  program.dataInit.size(),
              "heap overlaps the data segment");

    std::span<int32_t> image = memory.words();
    pe_assert(program.dataBase + program.dataInit.size() <= image.size(),
              "data segment does not fit in memory");
    std::copy(program.dataInit.begin(), program.dataInit.end(),
              image.begin() + program.dataBase);
    memory.write(isa::Program::heapPtrCell,
                 static_cast<int32_t>(program.heapBase));

    core = Core{};
    core.pc = program.entry;
    core.writeReg(isa::reg::sp, static_cast<int32_t>(layout.initialSp()));
    core.writeReg(isa::reg::fp, static_cast<int32_t>(layout.initialSp()));
}

StepResult
step(const isa::Program &program, Core &core, mem::MemCtx &ctx,
     IoChannel &io, bool allowIo, const MachineLayout &layout)
{
    using isa::Opcode;

    StepResult res;
    res.pc = core.pc;

    if (core.pc >= program.code.size()) {
        res.crash = CrashKind::BadJump;
        return res;
    }

    const isa::Instruction &inst = program.code[core.pc];
    res.op = inst.op;

    // The NT-entry predicate holds only through the leading run of
    // fixing instructions; hardware clears it at the first other op.
    bool pred = core.ntEntryPred;
    if (pred && !isa::isPredicatedFix(inst.op))
        core.ntEntryPred = false;

    auto rs1 = [&] { return core.readReg(inst.rs1); };
    auto rs2 = [&] { return core.readReg(inst.rs2); };

    auto validCode = [&](int32_t target) {
        return target >= 0 &&
               static_cast<uint32_t>(target) < program.code.size();
    };

    uint32_t nextPc = core.pc + 1;

    switch (inst.op) {
      case Opcode::Nop:
        break;

      case Opcode::Add:
        core.writeReg(inst.rd, wrapAdd(rs1(), rs2()));
        break;
      case Opcode::Sub:
        core.writeReg(inst.rd, wrapSub(rs1(), rs2()));
        break;
      case Opcode::Mul:
        core.writeReg(inst.rd, wrapMul(rs1(), rs2()));
        break;
      case Opcode::Div: {
        int32_t divisor = rs2();
        if (divisor == 0) {
            res.crash = CrashKind::DivByZero;
            return res;
        }
        core.writeReg(inst.rd, safeDiv(rs1(), divisor));
        break;
      }
      case Opcode::Rem: {
        int32_t divisor = rs2();
        if (divisor == 0) {
            res.crash = CrashKind::DivByZero;
            return res;
        }
        core.writeReg(inst.rd, safeRem(rs1(), divisor));
        break;
      }
      case Opcode::And:
        core.writeReg(inst.rd, rs1() & rs2());
        break;
      case Opcode::Or:
        core.writeReg(inst.rd, rs1() | rs2());
        break;
      case Opcode::Xor:
        core.writeReg(inst.rd, rs1() ^ rs2());
        break;
      case Opcode::Shl:
        core.writeReg(inst.rd, static_cast<int32_t>(
            static_cast<uint32_t>(rs1()) << (rs2() & 31)));
        break;
      case Opcode::Shr:
        core.writeReg(inst.rd, static_cast<int32_t>(
            static_cast<uint32_t>(rs1()) >> (rs2() & 31)));
        break;
      case Opcode::Sra:
        core.writeReg(inst.rd, rs1() >> (rs2() & 31));
        break;
      case Opcode::Slt:
        core.writeReg(inst.rd, rs1() < rs2() ? 1 : 0);
        break;
      case Opcode::Sle:
        core.writeReg(inst.rd, rs1() <= rs2() ? 1 : 0);
        break;
      case Opcode::Seq:
        core.writeReg(inst.rd, rs1() == rs2() ? 1 : 0);
        break;
      case Opcode::Sne:
        core.writeReg(inst.rd, rs1() != rs2() ? 1 : 0);
        break;
      case Opcode::Sgt:
        core.writeReg(inst.rd, rs1() > rs2() ? 1 : 0);
        break;
      case Opcode::Sge:
        core.writeReg(inst.rd, rs1() >= rs2() ? 1 : 0);
        break;

      case Opcode::Addi:
        core.writeReg(inst.rd, wrapAdd(rs1(), inst.imm));
        break;
      case Opcode::Andi:
        core.writeReg(inst.rd, rs1() & inst.imm);
        break;
      case Opcode::Ori:
        core.writeReg(inst.rd, rs1() | inst.imm);
        break;
      case Opcode::Xori:
        core.writeReg(inst.rd, rs1() ^ inst.imm);
        break;
      case Opcode::Shli:
        core.writeReg(inst.rd, static_cast<int32_t>(
            static_cast<uint32_t>(rs1()) << (inst.imm & 31)));
        break;
      case Opcode::Shri:
        core.writeReg(inst.rd, static_cast<int32_t>(
            static_cast<uint32_t>(rs1()) >> (inst.imm & 31)));
        break;
      case Opcode::Slti:
        core.writeReg(inst.rd, rs1() < inst.imm ? 1 : 0);
        break;
      case Opcode::Li:
        core.writeReg(inst.rd, inst.imm);
        break;

      case Opcode::Ld: {
        uint32_t addr = static_cast<uint32_t>(wrapAdd(rs1(), inst.imm));
        int32_t value;
        res.memAddr = addr;
        if (!ctx.tryRead(addr, value)) {
            res.crash = CrashKind::BadAddress;
            return res;
        }
        core.writeReg(inst.rd, value);
        res.memRead = true;
        break;
      }
      case Opcode::St: {
        uint32_t addr = static_cast<uint32_t>(wrapAdd(rs1(), inst.imm));
        res.memAddr = addr;
        if (!ctx.tryWrite(addr, rs2())) {
            res.crash = CrashKind::BadAddress;
            return res;
        }
        res.memWrite = true;
        break;
      }

      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Ble: case Opcode::Bgt: {
        int32_t a = rs1();
        int32_t b = rs2();
        bool taken = false;
        switch (inst.op) {
          case Opcode::Beq: taken = a == b; break;
          case Opcode::Bne: taken = a != b; break;
          case Opcode::Blt: taken = a < b; break;
          case Opcode::Bge: taken = a >= b; break;
          case Opcode::Ble: taken = a <= b; break;
          case Opcode::Bgt: taken = a > b; break;
          default: break;
        }
        if (!validCode(inst.imm)) {
            res.crash = CrashKind::BadJump;
            return res;
        }
        res.branch = true;
        res.branchTaken = taken;
        res.branchTarget = static_cast<uint32_t>(inst.imm);
        res.branchFallthrough = core.pc + 1;
        nextPc = taken ? static_cast<uint32_t>(inst.imm) : core.pc + 1;
        break;
      }

      case Opcode::Jmp:
        if (!validCode(inst.imm)) {
            res.crash = CrashKind::BadJump;
            return res;
        }
        nextPc = static_cast<uint32_t>(inst.imm);
        break;
      case Opcode::Jal:
        if (!validCode(inst.imm)) {
            res.crash = CrashKind::BadJump;
            return res;
        }
        core.writeReg(inst.rd, static_cast<int32_t>(core.pc + 1));
        nextPc = static_cast<uint32_t>(inst.imm);
        break;
      case Opcode::Jr: {
        int32_t target = rs1();
        if (!validCode(target)) {
            res.crash = CrashKind::BadJump;
            return res;
        }
        nextPc = static_cast<uint32_t>(target);
        break;
      }

      case Opcode::Alloc: {
        int32_t size = rs1();
        if (size < 0) {
            res.crash = CrashKind::HeapOverflow;
            return res;
        }
        int32_t ptr = ctx.read(isa::Program::heapPtrCell);
        if (ptr < 0 ||
            static_cast<uint64_t>(ptr) + static_cast<uint64_t>(size) >
                layout.heapLimit()) {
            res.crash = CrashKind::HeapOverflow;
            return res;
        }
        ctx.write(isa::Program::heapPtrCell, ptr + size);
        core.writeReg(inst.rd, ptr);
        res.allocated = true;
        res.allocBase = static_cast<uint32_t>(ptr);
        res.allocSize = static_cast<uint32_t>(size);
        res.memRead = res.memWrite = true;
        res.memAddr = isa::Program::heapPtrCell;
        break;
      }

      case Opcode::Chkb:
        res.boundsCheck = true;
        res.checkAddr = static_cast<uint32_t>(wrapAdd(rs1(), inst.imm));
        break;

      case Opcode::Assert:
        if (rs1() == 0) {
            res.assertFired = true;
            res.assertId = inst.imm;
        }
        break;

      case Opcode::Regobj:
        res.registeredObject = true;
        res.objBase = static_cast<uint32_t>(rs1());
        res.objSize = static_cast<uint32_t>(rs2());
        res.objKind = static_cast<isa::ObjectKind>(inst.imm);
        break;
      case Opcode::Unregobj:
        res.unregisteredObject = true;
        res.objBase = static_cast<uint32_t>(rs1());
        break;

      case Opcode::Pfix:
        if (pred)
            core.writeReg(inst.rd, inst.imm);
        break;
      case Opcode::Pfixst:
        if (pred) {
            uint32_t addr =
                static_cast<uint32_t>(wrapAdd(rs1(), inst.imm));
            res.memAddr = addr;
            if (!ctx.tryWrite(addr, rs2())) {
                res.crash = CrashKind::BadAddress;
                return res;
            }
            res.memWrite = true;
        }
        break;

      case Opcode::Sys: {
        auto call = static_cast<isa::Syscall>(inst.imm);
        if (call == isa::Syscall::Exit) {
            res.exited = true;
            return res;
        }
        if (!allowIo) {
            // Unsafe event: side effects of an NT-Path cannot escape
            // the sandbox, so the path must be squashed here.
            res.unsafeEvent = true;
            return res;
        }
        switch (call) {
          case isa::Syscall::PrintInt:
            io.printInt(rs1());
            break;
          case isa::Syscall::PrintChar:
            io.printChar(rs1());
            break;
          case isa::Syscall::ReadInt:
          case isa::Syscall::ReadChar:
            core.writeReg(inst.rd, io.readWord());
            break;
          default:
            pe_panic("unknown syscall ", inst.imm, " at pc ", core.pc);
        }
        break;
      }

      default:
        pe_panic("unhandled opcode ", opcodeName(inst.op), " at pc ",
                 core.pc);
    }

    core.pc = nextPc;
    return res;
}

} // namespace pe::sim
