/**
 * @file
 * The pruned re-decode image and the uninstrumented superblock loop.
 */

#include "src/sim/superblock.hh"

#include "src/support/status.hh"

#include "src/sim/arith.hh"

namespace pe::sim
{

SuperblockCache::SuperblockCache(const DecodedProgram &decoded,
                                 const std::vector<bool> &branchEligible)
    : source(&decoded),
      pruned(decoded.data(), decoded.data() + decoded.size()),
      eligibleBits(decoded.size(), false),
      promotedBits(decoded.size(), false)
{
    for (uint32_t pc = 0; pc < pruned.size(); ++pc) {
        HandlerKind k = pruned[pc].kind;
        if (k < HandlerKind::Beq)
            continue;
        // Every conditional branch starts demoted: the instrumented
        // path owns it until runtime saturation promotes it.
        pruned[pc].kind = HandlerKind::Surface;
        if (pc < branchEligible.size() && branchEligible[pc])
            eligibleBits[pc] = true;
    }
}

void
SuperblockCache::promote(uint32_t pc)
{
    pe_assert(eligible(pc) && !promoted(pc), "bad promotion");
    pruned[pc].kind = source->data()[pc].kind;
    promotedBits[pc] = true;
    promotedPcs.push_back(pc);
}

void
SuperblockCache::demoteAll(uint64_t newEpoch)
{
    for (uint32_t pc : promotedPcs) {
        pruned[pc].kind = HandlerKind::Surface;
        promotedBits[pc] = false;
    }
    promotedPcs.clear();
    curEpoch = newEpoch;
}

#if defined(__GNUC__) || defined(__clang__)
#define PE_COMPUTED_GOTO 1
#endif

SuperOut
runSuperblock(const SuperblockCache &cache, Core &core,
              uint64_t maxInstructions, bool inertChecks)
{
    // The pruned path never runs at an NT entrance, so the predicated
    // prologue of runBlock has nothing to do here.
    pe_assert(!core.ntEntryPred, "superblock at an NT entrance");

    SuperOut out;
    const DecodedInst *const insts = cache.data();
    const uint32_t codeSize = cache.size();
    uint32_t pc = core.pc;
    uint64_t left = maxInstructions;
    uint64_t cycles = 0;
    uint64_t branches = 0;

    const DecodedInst *di;

#define PE_RETIRE(NEXT)                                                 \
    do {                                                                \
        --left;                                                         \
        cycles += di->cost;                                             \
        pc = (NEXT);                                                    \
    } while (0)

#ifdef PE_COMPUTED_GOTO

    // Indexed by HandlerKind, like runBlock's table.  Pfix/Pfixst
    // dispatch to H_Nop (the predicate is clear by the assertion
    // above); branch kinds only appear in the pruned image while
    // promoted, and then execute unconditionally.
    static const void *const kDispatch[] = {
        &&H_Surface, &&H_Nop,
        &&H_Add, &&H_Sub, &&H_Mul, &&H_Div, &&H_Rem,
        &&H_And, &&H_Or, &&H_Xor, &&H_Shl, &&H_Shr, &&H_Sra,
        &&H_Slt, &&H_Sle, &&H_Seq, &&H_Sne, &&H_Sgt, &&H_Sge,
        &&H_Addi, &&H_Andi, &&H_Ori, &&H_Xori, &&H_Shli, &&H_Shri,
        &&H_Slti, &&H_Li,
        &&H_Jmp, &&H_Jal, &&H_Jr,
        &&H_Nop /* Pfix */, &&H_Nop /* Pfixst */,
        &&H_Inert /* Chkb */, &&H_Inert /* Assert */,
        &&H_Beq, &&H_Bne, &&H_Blt, &&H_Bge, &&H_Ble, &&H_Bgt,
    };
    static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                  static_cast<size_t>(HandlerKind::NumHandlerKinds));

#define PE_DISPATCH()                                                   \
    do {                                                                \
        if (left == 0 || pc >= codeSize)                                \
            goto H_Done;                                                \
        di = insts + pc;                                                \
        goto *kDispatch[static_cast<uint8_t>(di->kind)];                \
    } while (0)

#define PE_BINOP(EXPR)                                                  \
    do {                                                                \
        int32_t a = core.readReg(di->rs1);                              \
        int32_t b = core.readReg(di->rs2);                              \
        core.writeReg(di->rd, (EXPR));                                  \
        PE_RETIRE(pc + 1);                                              \
        PE_DISPATCH();                                                  \
    } while (0)

// A promoted branch's entire architectural effect: resolve, redirect,
// charge base opcode cost.  Coverage and BTB stay untouched — the
// promotion predicate proved every elided write a no-op.
#define PE_BRANCH(COND)                                                 \
    do {                                                                \
        int32_t a = core.readReg(di->rs1);                              \
        int32_t b = core.readReg(di->rs2);                              \
        bool taken = (COND);                                            \
        ++branches;                                                     \
        PE_RETIRE(taken ? static_cast<uint32_t>(di->imm) : pc + 1);     \
        PE_DISPATCH();                                                  \
    } while (0)

#define PE_IMMOP(EXPR)                                                  \
    do {                                                                \
        int32_t a = core.readReg(di->rs1);                              \
        int32_t b = di->imm;                                            \
        (void)b;                                                        \
        core.writeReg(di->rd, (EXPR));                                  \
        PE_RETIRE(pc + 1);                                              \
        PE_DISPATCH();                                                  \
    } while (0)

    PE_DISPATCH();

  H_Nop:
    PE_RETIRE(pc + 1);
    PE_DISPATCH();

  H_Add: PE_BINOP(wrapAdd(a, b));
  H_Sub: PE_BINOP(wrapSub(a, b));
  H_Mul: PE_BINOP(wrapMul(a, b));
  H_Div: {
        int32_t b = core.readReg(di->rs2);
        if (b == 0)
            goto H_Done;    // surfaces: step() raises DivByZero
        core.writeReg(di->rd, safeDiv(core.readReg(di->rs1), b));
        PE_RETIRE(pc + 1);
        PE_DISPATCH();
    }
  H_Rem: {
        int32_t b = core.readReg(di->rs2);
        if (b == 0)
            goto H_Done;
        core.writeReg(di->rd, safeRem(core.readReg(di->rs1), b));
        PE_RETIRE(pc + 1);
        PE_DISPATCH();
    }
  H_And: PE_BINOP(a & b);
  H_Or:  PE_BINOP(a | b);
  H_Xor: PE_BINOP(a ^ b);
  H_Shl: PE_BINOP(static_cast<int32_t>(static_cast<uint32_t>(a)
                                       << (b & 31)));
  H_Shr: PE_BINOP(static_cast<int32_t>(static_cast<uint32_t>(a) >>
                                       (b & 31)));
  H_Sra: PE_BINOP(a >> (b & 31));
  H_Slt: PE_BINOP(a < b ? 1 : 0);
  H_Sle: PE_BINOP(a <= b ? 1 : 0);
  H_Seq: PE_BINOP(a == b ? 1 : 0);
  H_Sne: PE_BINOP(a != b ? 1 : 0);
  H_Sgt: PE_BINOP(a > b ? 1 : 0);
  H_Sge: PE_BINOP(a >= b ? 1 : 0);

  H_Addi: PE_IMMOP(wrapAdd(a, b));
  H_Andi: PE_IMMOP(a & b);
  H_Ori:  PE_IMMOP(a | b);
  H_Xori: PE_IMMOP(a ^ b);
  H_Shli: PE_IMMOP(static_cast<int32_t>(static_cast<uint32_t>(a)
                                        << (b & 31)));
  H_Shri: PE_IMMOP(static_cast<int32_t>(static_cast<uint32_t>(a) >>
                                        (b & 31)));
  H_Slti: PE_IMMOP(a < b ? 1 : 0);
  H_Li: {
        core.writeReg(di->rd, di->imm);
        PE_RETIRE(pc + 1);
        PE_DISPATCH();
    }

  H_Jmp:
    PE_RETIRE(static_cast<uint32_t>(di->imm));   // validated at decode
    PE_DISPATCH();
  H_Jal:
    core.writeReg(di->rd, static_cast<int32_t>(pc + 1));
    PE_RETIRE(static_cast<uint32_t>(di->imm));
    PE_DISPATCH();
  H_Jr: {
        int32_t target = core.readReg(di->rs1);
        if (target < 0 || static_cast<uint32_t>(target) >= codeSize)
            goto H_Done;    // surfaces: step() raises BadJump
        PE_RETIRE(static_cast<uint32_t>(target));
        PE_DISPATCH();
    }

  H_Inert:
    if (!inertChecks)
        goto H_Done;
    PE_RETIRE(pc + 1);
    PE_DISPATCH();

  H_Beq: PE_BRANCH(a == b);
  H_Bne: PE_BRANCH(a != b);
  H_Blt: PE_BRANCH(a < b);
  H_Bge: PE_BRANCH(a >= b);
  H_Ble: PE_BRANCH(a <= b);
  H_Bgt: PE_BRANCH(a > b);

  H_Surface:
  H_Done:;

#undef PE_DISPATCH
#undef PE_BINOP
#undef PE_BRANCH
#undef PE_IMMOP

#else // !PE_COMPUTED_GOTO — portable switch dispatch

    for (;;) {
        if (left == 0 || pc >= codeSize)
            break;
        di = insts + pc;
        const int32_t a = core.readReg(di->rs1);
        bool stop = false;
        switch (di->kind) {
          case HandlerKind::Surface:
            stop = true;
            break;
          case HandlerKind::Nop:
          case HandlerKind::Pfix:       // predicate clear: NOP
          case HandlerKind::Pfixst:
            PE_RETIRE(pc + 1);
            break;
          case HandlerKind::Div:
          case HandlerKind::Rem: {
            int32_t b = core.readReg(di->rs2);
            if (b == 0) {
                stop = true;
                break;
            }
            core.writeReg(di->rd, di->kind == HandlerKind::Div
                                      ? safeDiv(a, b)
                                      : safeRem(a, b));
            PE_RETIRE(pc + 1);
            break;
          }
          case HandlerKind::Jmp:
            PE_RETIRE(static_cast<uint32_t>(di->imm));
            break;
          case HandlerKind::Jal:
            core.writeReg(di->rd, static_cast<int32_t>(pc + 1));
            PE_RETIRE(static_cast<uint32_t>(di->imm));
            break;
          case HandlerKind::Jr: {
            int32_t target = a;
            if (target < 0 ||
                static_cast<uint32_t>(target) >= codeSize) {
                stop = true;
                break;
            }
            PE_RETIRE(static_cast<uint32_t>(target));
            break;
          }
          case HandlerKind::Li:
            core.writeReg(di->rd, di->imm);
            PE_RETIRE(pc + 1);
            break;
          case HandlerKind::Chkb:
          case HandlerKind::Assert:
            if (!inertChecks) {
                stop = true;
                break;
            }
            PE_RETIRE(pc + 1);
            break;
          case HandlerKind::Beq: case HandlerKind::Bne:
          case HandlerKind::Blt: case HandlerKind::Bge:
          case HandlerKind::Ble: case HandlerKind::Bgt: {
            int32_t b = core.readReg(di->rs2);
            bool taken = false;
            switch (di->kind) {
              case HandlerKind::Beq: taken = a == b; break;
              case HandlerKind::Bne: taken = a != b; break;
              case HandlerKind::Blt: taken = a < b; break;
              case HandlerKind::Bge: taken = a >= b; break;
              case HandlerKind::Ble: taken = a <= b; break;
              case HandlerKind::Bgt: taken = a > b; break;
              default: break;
            }
            ++branches;
            PE_RETIRE(taken ? static_cast<uint32_t>(di->imm)
                            : pc + 1);
            break;
          }
          default: {
            const bool immOp = di->kind >= HandlerKind::Addi &&
                               di->kind <= HandlerKind::Slti;
            const int32_t b =
                immOp ? di->imm : core.readReg(di->rs2);
            int32_t v = 0;
            switch (di->kind) {
              case HandlerKind::Add:
              case HandlerKind::Addi: v = wrapAdd(a, b); break;
              case HandlerKind::Sub:  v = wrapSub(a, b); break;
              case HandlerKind::Mul:  v = wrapMul(a, b); break;
              case HandlerKind::And:
              case HandlerKind::Andi: v = a & b; break;
              case HandlerKind::Or:
              case HandlerKind::Ori:  v = a | b; break;
              case HandlerKind::Xor:
              case HandlerKind::Xori: v = a ^ b; break;
              case HandlerKind::Shl:
              case HandlerKind::Shli:
                v = static_cast<int32_t>(static_cast<uint32_t>(a)
                                         << (b & 31));
                break;
              case HandlerKind::Shr:
              case HandlerKind::Shri:
                v = static_cast<int32_t>(static_cast<uint32_t>(a) >>
                                         (b & 31));
                break;
              case HandlerKind::Sra:  v = a >> (b & 31); break;
              case HandlerKind::Slt:
              case HandlerKind::Slti: v = a < b ? 1 : 0; break;
              case HandlerKind::Sle:  v = a <= b ? 1 : 0; break;
              case HandlerKind::Seq:  v = a == b ? 1 : 0; break;
              case HandlerKind::Sne:  v = a != b ? 1 : 0; break;
              case HandlerKind::Sgt:  v = a > b ? 1 : 0; break;
              case HandlerKind::Sge:  v = a >= b ? 1 : 0; break;
              default: break;
            }
            core.writeReg(di->rd, v);
            PE_RETIRE(pc + 1);
            break;
          }
        }
        if (stop)
            break;
    }

#endif // PE_COMPUTED_GOTO

#undef PE_RETIRE

    core.pc = pc;
    out.instructions = maxInstructions - left;
    out.cycles = cycles;
    out.branches = branches;
    return out;
}

} // namespace pe::sim
