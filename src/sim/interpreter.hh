/**
 * @file
 * The PE-RISC interpreter: executes one instruction at a time against
 * a Core, a (possibly versioned) memory view and an I/O channel, and
 * reports what happened as a StepResult.
 *
 * The interpreter is deliberately policy-free; PathExpander policy
 * (NT-Path selection, sandboxing, termination, detector invocation,
 * timing) is layered on top by the engines in src/core and src/swpe.
 */

#ifndef PE_SIM_INTERPRETER_HH
#define PE_SIM_INTERPRETER_HH

#include "src/isa/program.hh"
#include "src/mem/versioned_buffer.hh"
#include "src/sim/core.hh"
#include "src/sim/events.hh"
#include "src/sim/io.hh"

namespace pe::sim
{

/** Address-space layout parameters of the simulated machine. */
struct MachineLayout
{
    uint32_t memWords = 1u << 20;   //!< 4 MB of data memory
    uint32_t stackWords = 1u << 16; //!< reserved for the stack

    uint32_t heapLimit() const { return memWords - stackWords; }
    uint32_t initialSp() const { return memWords - 16; }
};

/**
 * Initialize memory and @p core for @p program: copy the data image,
 * seed the heap bump pointer and set PC/SP/FP.
 */
void loadProgram(const isa::Program &program, mem::MainMemory &memory,
                 Core &core, const MachineLayout &layout);

/**
 * Execute the instruction at @p core.pc.
 *
 * @param allowIo false while running an NT-Path: a non-Exit syscall
 *                then becomes an unsafe event (no side effect, PC not
 *                advanced) instead of executing.
 * @return the event record; on crash or unsafe event the PC is left
 *         at the faulting instruction.
 */
StepResult step(const isa::Program &program, Core &core, mem::MemCtx &ctx,
                IoChannel &io, bool allowIo, const MachineLayout &layout);

} // namespace pe::sim

#endif // PE_SIM_INTERPRETER_HH
