/**
 * @file
 * Opcode cost table.
 */

#include "src/sim/timing.hh"

namespace pe::sim
{

uint64_t
opcodeCost(const TimingConfig &t, isa::Opcode op)
{
    using isa::Opcode;
    switch (op) {
      case Opcode::Mul:
        return t.mulCost;
      case Opcode::Div:
      case Opcode::Rem:
        return t.divCost;
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Ble: case Opcode::Bgt:
        return t.branchCost;
      case Opcode::Jmp: case Opcode::Jal: case Opcode::Jr:
        return t.jumpCost;
      case Opcode::Sys:
        return t.sysCost;
      case Opcode::Alloc:
        return t.allocCost;
      case Opcode::Regobj: case Opcode::Unregobj:
        return t.regObjCost;
      case Opcode::Pfix: case Opcode::Pfixst:
        return t.fixCost;
      default:
        return t.aluCost;
    }
}

} // namespace pe::sim
