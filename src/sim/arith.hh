/**
 * @file
 * Two's-complement arithmetic helpers shared by the per-step
 * interpreter and the block-stepped execution loop.  Both loops must
 * produce bit-identical architectural results, so the semantics live
 * in exactly one place.
 */

#ifndef PE_SIM_ARITH_HH
#define PE_SIM_ARITH_HH

#include <cstdint>
#include <limits>

namespace pe::sim
{

// Wrap-around helpers (avoid C++ signed-overflow UB).
inline int32_t
wrapAdd(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<uint32_t>(a) +
                                static_cast<uint32_t>(b));
}

inline int32_t
wrapSub(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<uint32_t>(a) -
                                static_cast<uint32_t>(b));
}

inline int32_t
wrapMul(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<uint32_t>(a) *
                                static_cast<uint32_t>(b));
}

inline int32_t
safeDiv(int32_t a, int32_t b)
{
    // b != 0 checked by caller; INT_MIN / -1 defined to saturate.
    if (a == std::numeric_limits<int32_t>::min() && b == -1)
        return a;
    return a / b;
}

inline int32_t
safeRem(int32_t a, int32_t b)
{
    if (a == std::numeric_limits<int32_t>::min() && b == -1)
        return 0;
    return a % b;
}

} // namespace pe::sim

#endif // PE_SIM_ARITH_HH
