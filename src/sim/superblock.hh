/**
 * @file
 * Self-pruning instrumentation: the saturated-region superblock cache
 * and its uninstrumented execution loop.
 *
 * PathExpander pays a per-branch tax on the taken path forever —
 * surface to the engine, write a coverage bit, bump a BTB exercise
 * counter, evaluate the spawn predicate — even in regions where none
 * of that can change anything anymore: both coverage bits set (the
 * write is an idempotent no-op), the consulted counters at their
 * saturation cap (the bump is a value no-op and the spawn compare can
 * never pass), and every remaining NT edge statically waived (tagged
 * no-spawn or prior-doomed).  The superblock cache re-decodes such
 * *saturated* branches into directly executable form: a per-run copy
 * of the engine's `DecodedProgram` image in which every conditional
 * branch starts demoted to `Surface`, and a runtime *promotion* flips
 * a saturated branch back to its executable kind.  `runSuperblock`
 * then streams straight-line work *and promoted branches* in one
 * tight dispatch loop — no StepResult, no coverage writes, no counter
 * bumps, no spawn checks — so consecutive saturated regions chain
 * into superblocks bounded only by the caller's budget.
 *
 * Invalidation is by counter-reset epoch: `Btb::resetCounters` bumps
 * an epoch, the engine passes the current epoch to `syncEpoch` once
 * per dispatch, and a mismatch demotes every promoted branch at once.
 * Execution then falls back to the instrumented path (surface,
 * record, bump, maybe spawn) until each region re-saturates, exactly
 * as the instrumented run would behave with its freshly zeroed
 * counters.
 *
 * Bit-identity (the engine's promotion predicate supplies the
 * preconditions; see docs/INTERNALS.md §13 for the full argument):
 * a promoted branch retires with the same base opcode cost the
 * per-step loop charges, touches neither memory hierarchy nor
 * detector, its elided coverage write is idempotent, its elided
 * counter bumps are value no-ops or land on counters provably never
 * read before the next reset zeroes them, its elided LRU stamp lives
 * in a statically conflict-free BTB set (analysis/regions.hh), and
 * the spawn it elides is impossible (counter at cap >= threshold, no
 * random spawn factor).
 */

#ifndef PE_SIM_SUPERBLOCK_HH
#define PE_SIM_SUPERBLOCK_HH

#include <cstdint>
#include <vector>

#include "src/sim/decoded.hh"

namespace pe::sim
{

/** What one runSuperblock call retired in bulk. */
struct SuperOut
{
    uint64_t instructions = 0;  //!< instructions executed
    uint64_t cycles = 0;        //!< their summed base opcode cost
    uint64_t branches = 0;      //!< promoted branches among them
};

/**
 * Per-run pruned re-decode of one engine's DecodedProgram.  The
 * backing array is a copy: promotion mutates this run's image only,
 * never the engine-shared decode.
 */
class SuperblockCache
{
  public:
    /**
     * @param decoded the engine's shared decode (kept by reference;
     *        must outlive the cache — both belong to one run).
     * @param branchEligible per-pc static eligibility
     *        (analysis::computeSaturationEligibility); branches
     *        outside it are never promoted.
     */
    SuperblockCache(const DecodedProgram &decoded,
                    const std::vector<bool> &branchEligible);

    /**
     * Lazily invalidate on counter reset: when @p epoch differs from
     * the cached one, demote every promoted branch and adopt it.
     * Called once per engine dispatch; the fast path is one compare.
     */
    void syncEpoch(uint64_t epoch)
    {
        if (epoch != curEpoch)
            demoteAll(epoch);
    }

    /** Promote the saturated branch at @p pc into executable form. */
    void promote(uint32_t pc);

    /** True while @p pc's branch is promoted in the current epoch. */
    bool promoted(uint32_t pc) const
    {
        return pc < promotedBits.size() && promotedBits[pc];
    }

    /** True when @p pc's branch may ever be promoted. */
    bool eligible(uint32_t pc) const
    {
        return pc < eligibleBits.size() && eligibleBits[pc];
    }

    /**
     * True when the pruned image can make progress at @p pc — the
     * analogue of DecodedProgram::startsBlock over the pruned kinds:
     * promoted branches qualify unconditionally, Chkb/Assert only for
     * detector-free runs (@p inertChecks), Surface never.
     */
    bool startsSuper(uint32_t pc, bool inertChecks) const
    {
        if (pc >= pruned.size())
            return false;
        HandlerKind k = pruned[pc].kind;
        if (k == HandlerKind::Surface)
            return false;
        if (k == HandlerKind::Chkb || k == HandlerKind::Assert)
            return inertChecks;
        return true;
    }

    uint32_t size() const { return static_cast<uint32_t>(pruned.size()); }
    const DecodedInst *data() const { return pruned.data(); }

    size_t promotedCount() const { return promotedPcs.size(); }
    uint64_t epoch() const { return curEpoch; }

  private:
    void demoteAll(uint64_t newEpoch);

    const DecodedProgram *source;
    std::vector<DecodedInst> pruned;    //!< branches demoted to Surface
    std::vector<bool> eligibleBits;
    std::vector<bool> promotedBits;
    std::vector<uint32_t> promotedPcs;  //!< for O(promoted) demotion
    uint64_t curEpoch = 0;
};

/**
 * Execute instructions from @p cache's pruned image starting at
 * @p core.pc: straight-line work exactly as `runBlock` would run it,
 * plus promoted conditional branches executed inline (resolve,
 * redirect, charge base opcode cost — nothing else).  Stops before
 * the first Surface-kind instruction (memory ops, syscalls,
 * unpromoted branches, detector ops unless @p inertChecks, runtime
 * Div/Rem-by-zero and invalid Jr, which surface so the instrumented
 * path raises the crash identically) and after at most
 * @p maxInstructions.
 *
 * The caller guarantees the NT-entry predicate is clear (the pruned
 * path runs only on the primary taken path, never at an NT entrance),
 * so Pfix/Pfixst retire as opcode-cost NOPs per the per-step rule.
 *
 * The returned cycle total is the exact base-opcode-cost sum; the
 * engine bulk-adds the software cost model's per-instruction dilation
 * and per-branch analysis cost using the instruction and branch
 * counts.
 */
SuperOut runSuperblock(const SuperblockCache &cache, Core &core,
                       uint64_t maxInstructions, bool inertChecks);

} // namespace pe::sim

#endif // PE_SIM_SUPERBLOCK_HH
