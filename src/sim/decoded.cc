/**
 * @file
 * Program pre-decode and the block-stepped execution loop.
 */

#include "src/sim/decoded.hh"

#include <algorithm>
#include <limits>

#include "src/analysis/cfg.hh"
#include "src/coverage/coverage.hh"
#include "src/sim/arith.hh"

namespace pe::sim
{

namespace
{

/**
 * Classify one instruction.  Anything that touches memory, resolves a
 * conditional branch, raises detector events, performs I/O or can
 * crash in a way the block loop does not pre-check is `Surface`.
 * Jmp/Jal with a statically invalid target also surface, so the
 * legacy step path produces the BadJump crash with identical
 * semantics (PC left at the faulting instruction).
 */
HandlerKind
classify(const isa::Instruction &inst, size_t codeSize)
{
    using isa::Opcode;

    // Single source of truth shared with the analysis CFG: decode
    // and static analysis can never disagree on target validity.
    auto staticTargetValid = [&] {
        return analysis::staticTargetValid(inst, codeSize);
    };

    switch (inst.op) {
      case Opcode::Nop:  return HandlerKind::Nop;
      case Opcode::Add:  return HandlerKind::Add;
      case Opcode::Sub:  return HandlerKind::Sub;
      case Opcode::Mul:  return HandlerKind::Mul;
      case Opcode::Div:  return HandlerKind::Div;
      case Opcode::Rem:  return HandlerKind::Rem;
      case Opcode::And:  return HandlerKind::And;
      case Opcode::Or:   return HandlerKind::Or;
      case Opcode::Xor:  return HandlerKind::Xor;
      case Opcode::Shl:  return HandlerKind::Shl;
      case Opcode::Shr:  return HandlerKind::Shr;
      case Opcode::Sra:  return HandlerKind::Sra;
      case Opcode::Slt:  return HandlerKind::Slt;
      case Opcode::Sle:  return HandlerKind::Sle;
      case Opcode::Seq:  return HandlerKind::Seq;
      case Opcode::Sne:  return HandlerKind::Sne;
      case Opcode::Sgt:  return HandlerKind::Sgt;
      case Opcode::Sge:  return HandlerKind::Sge;
      case Opcode::Addi: return HandlerKind::Addi;
      case Opcode::Andi: return HandlerKind::Andi;
      case Opcode::Ori:  return HandlerKind::Ori;
      case Opcode::Xori: return HandlerKind::Xori;
      case Opcode::Shli: return HandlerKind::Shli;
      case Opcode::Shri: return HandlerKind::Shri;
      case Opcode::Slti: return HandlerKind::Slti;
      case Opcode::Li:   return HandlerKind::Li;
      case Opcode::Jmp:
        return staticTargetValid() ? HandlerKind::Jmp
                                   : HandlerKind::Surface;
      case Opcode::Jal:
        return staticTargetValid() ? HandlerKind::Jal
                                   : HandlerKind::Surface;
      case Opcode::Jr:     return HandlerKind::Jr;
      case Opcode::Pfix:   return HandlerKind::Pfix;
      case Opcode::Pfixst: return HandlerKind::Pfixst;
      case Opcode::Chkb:   return HandlerKind::Chkb;
      case Opcode::Assert: return HandlerKind::Assert;
      // Branches with a statically invalid target surface so the
      // slim path raises the BadJump crash identically.
      case Opcode::Beq:
        return staticTargetValid() ? HandlerKind::Beq
                                   : HandlerKind::Surface;
      case Opcode::Bne:
        return staticTargetValid() ? HandlerKind::Bne
                                   : HandlerKind::Surface;
      case Opcode::Blt:
        return staticTargetValid() ? HandlerKind::Blt
                                   : HandlerKind::Surface;
      case Opcode::Bge:
        return staticTargetValid() ? HandlerKind::Bge
                                   : HandlerKind::Surface;
      case Opcode::Ble:
        return staticTargetValid() ? HandlerKind::Ble
                                   : HandlerKind::Surface;
      case Opcode::Bgt:
        return staticTargetValid() ? HandlerKind::Bgt
                                   : HandlerKind::Surface;
      default:             return HandlerKind::Surface;
    }
}

} // namespace

DecodedProgram::DecodedProgram(const isa::Program &program,
                               const TimingConfig &timing)
{
    insts.reserve(program.code.size());
    for (const isa::Instruction &inst : program.code) {
        DecodedInst di;
        di.imm = inst.imm;
        di.rd = inst.rd;
        di.rs1 = inst.rs1;
        di.rs2 = inst.rs2;
        di.kind = classify(inst, program.code.size());
        uint64_t cost = opcodeCost(timing, inst.op);
        if (cost > std::numeric_limits<uint32_t>::max()) {
            // Absurd configured cost: fall back to the slim path,
            // whose 64-bit accounting handles it exactly.
            di.kind = HandlerKind::Surface;
            cost = 0;
        }
        di.cost = static_cast<uint32_t>(cost);
        insts.push_back(di);
    }
}

void
DecodedProgram::markNoSpawn(uint32_t startPc, uint32_t endPc)
{
    endPc = std::min<uint32_t>(endPc, static_cast<uint32_t>(insts.size()));
    for (uint32_t pc = startPc; pc < endPc; ++pc)
        insts[pc].flags |= DecodedInst::FlagNoSpawn;
}

namespace
{

/**
 * NT-entrance predicate handling, shared by both dispatch variants.
 * While the predicate is set, only the leading run of predicated-fix
 * instructions executes here: Pfix performs its write, Pfixst (a
 * potential memory write) surfaces.  The first non-fixing
 * block-safe instruction clears the predicate — exactly the per-step
 * rule — and falls through to the fast loop.
 *
 * @return true when the block must stop here (surface or budget).
 */
bool
predicatedPrologue(const DecodedInst *insts, uint32_t codeSize,
                   Core &core, uint32_t &pc, uint64_t &left,
                   uint64_t &cycles, uint64_t cycleBudget,
                   uint64_t perInstExtra)
{
    for (;;) {
        if (left == 0 || pc >= codeSize || cycles > cycleBudget)
            return true;
        const DecodedInst &di = insts[pc];
        switch (di.kind) {
          case HandlerKind::Pfix:
            core.writeReg(di.rd, di.imm);
            --left;
            cycles += di.cost + perInstExtra;
            ++pc;
            break;
          case HandlerKind::Pfixst:
          case HandlerKind::Surface:
            return true;
          default:
            core.ntEntryPred = false;
            return false;
        }
    }
}

} // namespace

#if defined(__GNUC__) || defined(__clang__)
#define PE_COMPUTED_GOTO 1
#endif

BlockOut
runBlock(const DecodedProgram &decoded, Core &core,
         uint64_t maxInstructions, uint64_t cycleBudget,
         uint64_t perInstExtra, coverage::BranchCoverage *branchSink,
         bool inertChecks)
{
    BlockOut out;
    const DecodedInst *const insts = decoded.data();
    const uint32_t codeSize = decoded.size();
    uint32_t pc = core.pc;
    uint64_t left = maxInstructions;
    // Accumulates effective cycles (base cost + perInstExtra); the
    // extra share is subtracted once at the end so BlockOut reports
    // base cost only.
    uint64_t cycles = 0;

    if (core.ntEntryPred) [[unlikely]] {
        if (predicatedPrologue(insts, codeSize, core, pc, left,
                               cycles, cycleBudget, perInstExtra)) {
            core.pc = pc;
            out.instructions = maxInstructions - left;
            out.cycles = cycles - perInstExtra * out.instructions;
            return out;
        }
    }

    const DecodedInst *di;

// RETIRE charges the current instruction and redirects to NEXT.
#define PE_RETIRE(NEXT)                                                 \
    do {                                                                \
        --left;                                                         \
        cycles += di->cost + perInstExtra;                              \
        pc = (NEXT);                                                    \
    } while (0)

#ifdef PE_COMPUTED_GOTO

    // One label per HandlerKind, indexed by its enumerator value.
    // Pfix/Pfixst reach H_Nop: with the predicate clear (guaranteed
    // past the prologue) they execute as fixCost NOPs.
    static const void *const kDispatch[] = {
        &&H_Surface, &&H_Nop,
        &&H_Add, &&H_Sub, &&H_Mul, &&H_Div, &&H_Rem,
        &&H_And, &&H_Or, &&H_Xor, &&H_Shl, &&H_Shr, &&H_Sra,
        &&H_Slt, &&H_Sle, &&H_Seq, &&H_Sne, &&H_Sgt, &&H_Sge,
        &&H_Addi, &&H_Andi, &&H_Ori, &&H_Xori, &&H_Shli, &&H_Shri,
        &&H_Slti, &&H_Li,
        &&H_Jmp, &&H_Jal, &&H_Jr,
        &&H_Nop /* Pfix */, &&H_Nop /* Pfixst */,
        &&H_Inert /* Chkb */, &&H_Inert /* Assert */,
        &&H_Beq, &&H_Bne, &&H_Blt, &&H_Bge, &&H_Ble, &&H_Bgt,
    };
    static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                  static_cast<size_t>(HandlerKind::NumHandlerKinds));

#define PE_DISPATCH()                                                   \
    do {                                                                \
        if (left == 0 || pc >= codeSize || cycles > cycleBudget)        \
            goto H_Done;                                                \
        di = insts + pc;                                                \
        goto *kDispatch[static_cast<uint8_t>(di->kind)];                \
    } while (0)

#define PE_BINOP(EXPR)                                                  \
    do {                                                                \
        int32_t a = core.readReg(di->rs1);                              \
        int32_t b = core.readReg(di->rs2);                              \
        core.writeReg(di->rd, (EXPR));                                  \
        PE_RETIRE(pc + 1);                                              \
        PE_DISPATCH();                                                  \
    } while (0)

// Without a sink the branch surfaces (pc untouched, nothing charged).
// The null check lives in the branch handlers, so straight-line
// instructions pay nothing for it.
#define PE_BRANCH(COND)                                                 \
    do {                                                                \
        if (!branchSink)                                                \
            goto H_Done;                                                \
        int32_t a = core.readReg(di->rs1);                              \
        int32_t b = core.readReg(di->rs2);                              \
        bool taken = (COND);                                            \
        branchSink->onTakenEdge(pc, taken);                             \
        PE_RETIRE(taken ? static_cast<uint32_t>(di->imm) : pc + 1);     \
        PE_DISPATCH();                                                  \
    } while (0)

#define PE_IMMOP(EXPR)                                                  \
    do {                                                                \
        int32_t a = core.readReg(di->rs1);                              \
        int32_t b = di->imm;                                            \
        (void)b;                                                        \
        core.writeReg(di->rd, (EXPR));                                  \
        PE_RETIRE(pc + 1);                                              \
        PE_DISPATCH();                                                  \
    } while (0)

    PE_DISPATCH();

  H_Nop:
    PE_RETIRE(pc + 1);
    PE_DISPATCH();

  H_Add: PE_BINOP(wrapAdd(a, b));
  H_Sub: PE_BINOP(wrapSub(a, b));
  H_Mul: PE_BINOP(wrapMul(a, b));
  H_Div: {
        int32_t b = core.readReg(di->rs2);
        if (b == 0)
            goto H_Done;    // surfaces: step() raises DivByZero
        core.writeReg(di->rd, safeDiv(core.readReg(di->rs1), b));
        PE_RETIRE(pc + 1);
        PE_DISPATCH();
    }
  H_Rem: {
        int32_t b = core.readReg(di->rs2);
        if (b == 0)
            goto H_Done;
        core.writeReg(di->rd, safeRem(core.readReg(di->rs1), b));
        PE_RETIRE(pc + 1);
        PE_DISPATCH();
    }
  H_And: PE_BINOP(a & b);
  H_Or:  PE_BINOP(a | b);
  H_Xor: PE_BINOP(a ^ b);
  H_Shl: PE_BINOP(static_cast<int32_t>(static_cast<uint32_t>(a)
                                       << (b & 31)));
  H_Shr: PE_BINOP(static_cast<int32_t>(static_cast<uint32_t>(a) >>
                                       (b & 31)));
  H_Sra: PE_BINOP(a >> (b & 31));
  H_Slt: PE_BINOP(a < b ? 1 : 0);
  H_Sle: PE_BINOP(a <= b ? 1 : 0);
  H_Seq: PE_BINOP(a == b ? 1 : 0);
  H_Sne: PE_BINOP(a != b ? 1 : 0);
  H_Sgt: PE_BINOP(a > b ? 1 : 0);
  H_Sge: PE_BINOP(a >= b ? 1 : 0);

  H_Addi: PE_IMMOP(wrapAdd(a, b));
  H_Andi: PE_IMMOP(a & b);
  H_Ori:  PE_IMMOP(a | b);
  H_Xori: PE_IMMOP(a ^ b);
  H_Shli: PE_IMMOP(static_cast<int32_t>(static_cast<uint32_t>(a)
                                        << (b & 31)));
  H_Shri: PE_IMMOP(static_cast<int32_t>(static_cast<uint32_t>(a) >>
                                        (b & 31)));
  H_Slti: PE_IMMOP(a < b ? 1 : 0);
  H_Li: {
        core.writeReg(di->rd, di->imm);
        PE_RETIRE(pc + 1);
        PE_DISPATCH();
    }

  H_Jmp:
    PE_RETIRE(static_cast<uint32_t>(di->imm));   // validated at decode
    PE_DISPATCH();
  H_Jal:
    core.writeReg(di->rd, static_cast<int32_t>(pc + 1));
    PE_RETIRE(static_cast<uint32_t>(di->imm));
    PE_DISPATCH();
  H_Jr: {
        int32_t target = core.readReg(di->rs1);
        if (target < 0 || static_cast<uint32_t>(target) >= codeSize)
            goto H_Done;    // surfaces: step() raises BadJump
        PE_RETIRE(static_cast<uint32_t>(target));
        PE_DISPATCH();
    }

  H_Inert:
    // Chkb/Assert: with no detector in the run, nothing consumes
    // their events, so they are opcode-cost NOPs.
    if (!inertChecks)
        goto H_Done;
    PE_RETIRE(pc + 1);
    PE_DISPATCH();

  H_Beq: PE_BRANCH(a == b);
  H_Bne: PE_BRANCH(a != b);
  H_Blt: PE_BRANCH(a < b);
  H_Bge: PE_BRANCH(a >= b);
  H_Ble: PE_BRANCH(a <= b);
  H_Bgt: PE_BRANCH(a > b);

  H_Surface:
  H_Done:;

#undef PE_DISPATCH
#undef PE_BINOP
#undef PE_BRANCH
#undef PE_IMMOP

#else // !PE_COMPUTED_GOTO — portable switch dispatch

    for (;;) {
        if (left == 0 || pc >= codeSize || cycles > cycleBudget)
            break;
        di = insts + pc;
        const int32_t a = core.readReg(di->rs1);
        bool stop = false;
        switch (di->kind) {
          case HandlerKind::Surface:
            stop = true;
            break;
          case HandlerKind::Nop:
          case HandlerKind::Pfix:       // predicate clear: NOP
          case HandlerKind::Pfixst:
            PE_RETIRE(pc + 1);
            break;
          case HandlerKind::Div:
          case HandlerKind::Rem: {
            int32_t b = core.readReg(di->rs2);
            if (b == 0) {
                stop = true;
                break;
            }
            core.writeReg(di->rd, di->kind == HandlerKind::Div
                                      ? safeDiv(a, b)
                                      : safeRem(a, b));
            PE_RETIRE(pc + 1);
            break;
          }
          case HandlerKind::Jmp:
            PE_RETIRE(static_cast<uint32_t>(di->imm));
            break;
          case HandlerKind::Jal:
            core.writeReg(di->rd, static_cast<int32_t>(pc + 1));
            PE_RETIRE(static_cast<uint32_t>(di->imm));
            break;
          case HandlerKind::Jr: {
            int32_t target = a;
            if (target < 0 ||
                static_cast<uint32_t>(target) >= codeSize) {
                stop = true;
                break;
            }
            PE_RETIRE(static_cast<uint32_t>(target));
            break;
          }
          case HandlerKind::Li:
            core.writeReg(di->rd, di->imm);
            PE_RETIRE(pc + 1);
            break;
          case HandlerKind::Chkb:
          case HandlerKind::Assert:
            if (!inertChecks) {
                stop = true;
                break;
            }
            PE_RETIRE(pc + 1);
            break;
          case HandlerKind::Beq: case HandlerKind::Bne:
          case HandlerKind::Blt: case HandlerKind::Bge:
          case HandlerKind::Ble: case HandlerKind::Bgt: {
            if (!branchSink) {
                stop = true;     // surfaces: PE-on branch semantics
                break;
            }
            int32_t b = core.readReg(di->rs2);
            bool taken = false;
            switch (di->kind) {
              case HandlerKind::Beq: taken = a == b; break;
              case HandlerKind::Bne: taken = a != b; break;
              case HandlerKind::Blt: taken = a < b; break;
              case HandlerKind::Bge: taken = a >= b; break;
              case HandlerKind::Ble: taken = a <= b; break;
              case HandlerKind::Bgt: taken = a > b; break;
              default: break;
            }
            branchSink->onTakenEdge(pc, taken);
            PE_RETIRE(taken ? static_cast<uint32_t>(di->imm)
                            : pc + 1);
            break;
          }
          default: {
            const bool immOp = di->kind >= HandlerKind::Addi &&
                               di->kind <= HandlerKind::Slti;
            const int32_t b =
                immOp ? di->imm : core.readReg(di->rs2);
            int32_t v = 0;
            switch (di->kind) {
              case HandlerKind::Add:
              case HandlerKind::Addi: v = wrapAdd(a, b); break;
              case HandlerKind::Sub:  v = wrapSub(a, b); break;
              case HandlerKind::Mul:  v = wrapMul(a, b); break;
              case HandlerKind::And:
              case HandlerKind::Andi: v = a & b; break;
              case HandlerKind::Or:
              case HandlerKind::Ori:  v = a | b; break;
              case HandlerKind::Xor:
              case HandlerKind::Xori: v = a ^ b; break;
              case HandlerKind::Shl:
              case HandlerKind::Shli:
                v = static_cast<int32_t>(static_cast<uint32_t>(a)
                                         << (b & 31));
                break;
              case HandlerKind::Shr:
              case HandlerKind::Shri:
                v = static_cast<int32_t>(static_cast<uint32_t>(a) >>
                                         (b & 31));
                break;
              case HandlerKind::Sra:  v = a >> (b & 31); break;
              case HandlerKind::Slt:
              case HandlerKind::Slti: v = a < b ? 1 : 0; break;
              case HandlerKind::Sle:  v = a <= b ? 1 : 0; break;
              case HandlerKind::Seq:  v = a == b ? 1 : 0; break;
              case HandlerKind::Sne:  v = a != b ? 1 : 0; break;
              case HandlerKind::Sgt:  v = a > b ? 1 : 0; break;
              case HandlerKind::Sge:  v = a >= b ? 1 : 0; break;
              default: break;
            }
            core.writeReg(di->rd, v);
            PE_RETIRE(pc + 1);
            break;
          }
        }
        if (stop)
            break;
    }

#endif // PE_COMPUTED_GOTO

#undef PE_RETIRE

    core.pc = pc;
    out.instructions = maxInstructions - left;
    out.cycles = cycles - perInstExtra * out.instructions;
    return out;
}

} // namespace pe::sim
