/**
 * @file
 * Timing parameters of the simulated machine (paper Table 2) plus the
 * per-opcode execution costs of our simple in-order core model.
 *
 * The paper uses a cycle-accurate out-of-order CMP simulator; we use
 * per-operation costs plus the modeled memory hierarchy.  The paper's
 * results are relative (overhead percentages, orders of magnitude), so
 * this preserves the reported shapes; see DESIGN.md "Substitutions".
 */

#ifndef PE_SIM_TIMING_HH
#define PE_SIM_TIMING_HH

#include <cstdint>

#include "src/isa/opcode.hh"
#include "src/mem/hierarchy.hh"

namespace pe::sim
{

/** Machine timing parameters; defaults follow Table 2. */
struct TimingConfig
{
    // Core operation costs (cycles), excluding memory hierarchy time.
    uint64_t aluCost = 1;
    uint64_t mulCost = 3;
    uint64_t divCost = 12;
    uint64_t branchCost = 1;
    uint64_t jumpCost = 1;
    uint64_t sysCost = 10;
    uint64_t allocCost = 2;
    uint64_t regObjCost = 1;
    uint64_t fixCost = 1;       //!< Pfix/Pfixst (predicate set or not)

    // PathExpander control overheads (Table 2).
    uint64_t spawnOverhead = 20;
    uint64_t squashOverhead = 10;

    // Memory hierarchy latencies and ports (Table 2).
    pe::mem::MemTimingParams mem;

    /** Table 2: L1 latency is 2 cycles in the non-CMP configuration. */
    static TimingConfig standardConfig()
    {
        TimingConfig t;
        t.mem.l1HitLatency = 2;
        return t;
    }

    /** Table 2: L1 latency is 3 cycles with the CMP option. */
    static TimingConfig cmpConfig()
    {
        TimingConfig t;
        t.mem.l1HitLatency = 3;
        return t;
    }
};

/** Base execution cost of @p op, excluding memory hierarchy time. */
uint64_t opcodeCost(const TimingConfig &timing, isa::Opcode op);

} // namespace pe::sim

#endif // PE_SIM_TIMING_HH
