/**
 * @file
 * MiniC compiler driver.
 */

#include "src/minic/compiler.hh"

#include "src/minic/codegen.hh"
#include "src/minic/lexer.hh"
#include "src/minic/parser.hh"

namespace pe::minic
{

isa::Program
compile(const std::string &source, const std::string &name)
{
    return generate(parse(lex(source)), name);
}

} // namespace pe::minic
