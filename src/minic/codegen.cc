/**
 * @file
 * MiniC code generator implementation.
 */

#include "src/minic/codegen.hh"

#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/isa/regs.hh"
#include "src/support/status.hh"

namespace pe::minic
{

namespace
{

using isa::Instruction;
using isa::ObjectKind;
using isa::Opcode;
namespace reg = isa::reg;

constexpr uint32_t guardW = isa::Program::guardWords;
constexpr int32_t blankStructWords = 16;
constexpr int maxEvalDepth = reg::evalLimit - reg::evalBase;

/** A local variable or parameter. */
struct LocalSym
{
    bool isArray = false;
    bool isPointer = false;
    int32_t off = 0;        //!< fp-relative: scalar slot or array payload
    int32_t size = 0;       //!< array payload words
};

/** A global variable. */
struct GlobalSym
{
    bool isArray = false;
    bool isPointer = false;
    uint32_t addr = 0;      //!< absolute: scalar word or array payload
    int32_t size = 0;
};

/** Where a fixable condition variable lives. */
struct FixHome
{
    bool isGlobal = false;
    int32_t fpOff = 0;      //!< local: offset from fp
    uint32_t addr = 0;      //!< global: absolute address
};

/** Consistency-fix plan for the two edges of one branch. */
struct CondFix
{
    bool valid = false;
    FixHome home;
    bool hasTrueVal = false;
    bool hasFalseVal = false;
    int32_t trueVal = 0;    //!< value satisfying the true edge
    int32_t falseVal = 0;   //!< value satisfying the false edge
};

class CodeGen
{
  public:
    CodeGen(const TranslationUnit &tu, const std::string &name)
        : unit(tu)
    {
        program.name = name;
    }

    isa::Program run();

  private:
    // ---- emission ------------------------------------------------
    uint32_t emit(const Instruction &inst, int line)
    {
        program.code.push_back(inst);
        program.locs.push_back(isa::SourceLoc{line, 0});
        return static_cast<uint32_t>(program.code.size() - 1);
    }

    int newLabel() { return nextLabel++; }

    void placeLabel(int label)
    {
        labelPc[label] = static_cast<uint32_t>(program.code.size());
    }

    void emitBranchTo(Opcode op, uint8_t rs1, uint8_t rs2, int label,
                      int line)
    {
        uint32_t pc = emit(isa::makeBranch(op, rs1, rs2, 0), line);
        labelFixups.push_back({pc, label});
    }

    void emitJmpTo(int label, int line)
    {
        uint32_t pc = emit(isa::makeJmp(0), line);
        labelFixups.push_back({pc, label});
    }

    void emitCallTo(const std::string &func, int line)
    {
        uint32_t pc = emit(isa::makeJal(reg::ra, 0), line);
        callFixups.push_back({pc, func, line});
    }

    // ---- data segment --------------------------------------------
    uint32_t allocGuarded(int32_t payloadWords, ObjectKind kind);
    uint32_t allocScalar(int32_t initValue);
    uint32_t internString(const std::string &text);

    // ---- symbols -------------------------------------------------
    const LocalSym *findLocal(const std::string &name) const;
    const GlobalSym *findGlobal(const std::string &name) const;

    [[noreturn]] void error(int line, const std::string &msg) const
    {
        pe_fatal("minic codegen error at line ", line, " in ",
                 program.name, ": ", msg);
    }

    // ---- expressions ----------------------------------------------
    uint8_t evalReg(int depth) const
    {
        if (depth >= maxEvalDepth)
            pe_fatal("minic: expression too deep in ", program.name);
        return static_cast<uint8_t>(reg::evalBase + depth);
    }

    void genExpr(const Expr &e, int depth);
    void genCall(const Expr &e, int depth);
    void genAssign(const Expr &e, int depth);
    void genIdentLoad(const Expr &e, int depth);
    void genIdentStore(const Expr &e, uint8_t valueReg);

    // ---- conditions and fixing -------------------------------------
    CondFix genCondBranchFalse(const Expr &cond, int falseLabel);
    void emitEdgeFix(const CondFix &fix, bool trueEdge, int line);
    std::optional<FixHome> homeOf(const Expr &e) const;
    bool identIsPointer(const Expr &e) const;

    // ---- statements ------------------------------------------------
    void genStmt(const Stmt &s);
    void genVarDecl(const Stmt &s);
    void genIf(const Stmt &s);
    void genWhile(const Stmt &s);
    void genFor(const Stmt &s);

    // ---- functions -------------------------------------------------
    void genFunc(const FuncDecl &func);
    void genStub();
    void patchFixups();

    // ---- members ---------------------------------------------------
    const TranslationUnit &unit;
    isa::Program program;

    // Data segment under construction.
    std::vector<int32_t> data;      //!< image from dataBase upward
    std::unordered_map<std::string, uint32_t> stringPool;
    struct RegEntry
    {
        uint32_t addr;
        int32_t size;
        ObjectKind kind;
    };
    std::vector<RegEntry> startupRegs;
    uint32_t blankAddr = 0;

    // Symbols.
    std::unordered_map<std::string, GlobalSym> globals;
    std::unordered_map<std::string, uint32_t> funcPc;
    std::vector<std::unordered_map<std::string, LocalSym>> scopes;

    // Per-function state.
    int32_t nextSlot = 0;           //!< frame words used so far
    uint32_t frameFixupPc = 0;
    int epilogueLabel = 0;
    std::vector<std::pair<int32_t, int32_t>> funcArrays; //!< off,size
    std::vector<int> breakLabels;
    std::vector<int> continueLabels;

    // Fixups.
    int nextLabel = 0;
    std::unordered_map<int, uint32_t> labelPc;
    struct LabelFixup
    {
        uint32_t pc;
        int label;
    };
    struct CallFixup
    {
        uint32_t pc;
        std::string func;
        int line;
    };
    std::vector<LabelFixup> labelFixups;
    std::vector<CallFixup> callFixups;
};

// ---- data segment ---------------------------------------------------

uint32_t
CodeGen::allocGuarded(int32_t payloadWords, ObjectKind kind)
{
    for (uint32_t i = 0; i < guardW; ++i)
        data.push_back(0);
    uint32_t payload = program.dataBase +
                       static_cast<uint32_t>(data.size());
    for (int32_t i = 0; i < payloadWords; ++i)
        data.push_back(0);
    for (uint32_t i = 0; i < guardW; ++i)
        data.push_back(0);
    startupRegs.push_back({payload, payloadWords, kind});
    return payload;
}

uint32_t
CodeGen::allocScalar(int32_t initValue)
{
    uint32_t addr = program.dataBase +
                    static_cast<uint32_t>(data.size());
    data.push_back(initValue);
    return addr;
}

uint32_t
CodeGen::internString(const std::string &text)
{
    auto it = stringPool.find(text);
    if (it != stringPool.end())
        return it->second;
    uint32_t payload = allocGuarded(
        static_cast<int32_t>(text.size()) + 1, ObjectKind::GlobalArray);
    for (size_t i = 0; i < text.size(); ++i) {
        data[payload - program.dataBase + i] =
            static_cast<unsigned char>(text[i]);
    }
    // Terminator already zero.
    stringPool.emplace(text, payload);
    return payload;
}

// ---- symbols ----------------------------------------------------------

const LocalSym *
CodeGen::findLocal(const std::string &name) const
{
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
        auto found = it->find(name);
        if (found != it->end())
            return &found->second;
    }
    return nullptr;
}

const GlobalSym *
CodeGen::findGlobal(const std::string &name) const
{
    auto it = globals.find(name);
    return it == globals.end() ? nullptr : &it->second;
}

// ---- expressions --------------------------------------------------------

void
CodeGen::genIdentLoad(const Expr &e, int depth)
{
    uint8_t r = evalReg(depth);
    if (const LocalSym *local = findLocal(e.name)) {
        if (local->isArray)
            emit(isa::makeI(Opcode::Addi, r, reg::fp, local->off),
                 e.line);
        else
            emit(isa::makeI(Opcode::Ld, r, reg::fp, local->off),
                 e.line);
        return;
    }
    if (const GlobalSym *global = findGlobal(e.name)) {
        if (global->isArray)
            emit(isa::makeLi(r, static_cast<int32_t>(global->addr)),
                 e.line);
        else
            emit(isa::makeI(Opcode::Ld, r, reg::zero,
                            static_cast<int32_t>(global->addr)),
                 e.line);
        return;
    }
    error(e.line, "undefined variable '" + e.name + "'");
}

void
CodeGen::genIdentStore(const Expr &e, uint8_t valueReg)
{
    if (const LocalSym *local = findLocal(e.name)) {
        if (local->isArray)
            error(e.line, "cannot assign to array '" + e.name + "'");
        emit(Instruction{Opcode::St, 0, reg::fp, valueReg, local->off},
             e.line);
        return;
    }
    if (const GlobalSym *global = findGlobal(e.name)) {
        if (global->isArray)
            error(e.line, "cannot assign to array '" + e.name + "'");
        emit(Instruction{Opcode::St, 0, reg::zero, valueReg,
                         static_cast<int32_t>(global->addr)},
             e.line);
        return;
    }
    error(e.line, "undefined variable '" + e.name + "'");
}

void
CodeGen::genAssign(const Expr &e, int depth)
{
    const Expr &lhs = *e.a;
    uint8_t r = evalReg(depth);

    switch (lhs.kind) {
      case ExprKind::Ident:
        genExpr(*e.b, depth);
        genIdentStore(lhs, r);
        return;
      case ExprKind::Unary: {
        pe_assert(lhs.unOp == UnOp::Deref, "bad assign lhs");
        genExpr(*lhs.a, depth);             // address
        genExpr(*e.b, depth + 1);           // value
        uint8_t v = evalReg(depth + 1);
        emit(isa::makeI(Opcode::Chkb, 0, r, 0), e.line);
        emit(Instruction{Opcode::St, 0, r, v, 0}, e.line);
        emit(isa::makeI(Opcode::Addi, r, v, 0), e.line);
        return;
      }
      case ExprKind::Index: {
        genExpr(*lhs.a, depth);             // base
        genExpr(*lhs.b, depth + 1);         // index
        uint8_t i = evalReg(depth + 1);
        emit(isa::makeR(Opcode::Add, r, r, i), e.line);
        genExpr(*e.b, depth + 1);           // value
        emit(isa::makeI(Opcode::Chkb, 0, r, 0), e.line);
        emit(Instruction{Opcode::St, 0, r, i, 0}, e.line);
        emit(isa::makeI(Opcode::Addi, r, i, 0), e.line);
        return;
      }
      default:
        error(e.line, "assignment target is not an lvalue");
    }
}

void
CodeGen::genCall(const Expr &e, int depth)
{
    uint8_t r = evalReg(depth);
    int line = e.line;
    auto argc = [&](size_t n) {
        if (e.args.size() != n) {
            error(line, "builtin '" + e.name + "' expects " +
                            std::to_string(n) + " argument(s)");
        }
    };

    // ---- builtins ----
    if (e.name == "print_int") {
        argc(1);
        genExpr(*e.args[0], depth);
        emit(isa::makeSys(isa::Syscall::PrintInt, 0, r), line);
        return;
    }
    if (e.name == "print_char") {
        argc(1);
        genExpr(*e.args[0], depth);
        emit(isa::makeSys(isa::Syscall::PrintChar, 0, r), line);
        return;
    }
    if (e.name == "print_str") {
        argc(1);
        genExpr(*e.args[0], depth);
        int loop = newLabel();
        int done = newLabel();
        placeLabel(loop);
        emit(isa::makeI(Opcode::Chkb, 0, r, 0), line);
        emit(isa::makeI(Opcode::Ld, reg::t0, r, 0), line);
        emitBranchTo(Opcode::Beq, reg::t0, reg::zero, done, line);
        emit(isa::makeSys(isa::Syscall::PrintChar, 0, reg::t0), line);
        emit(isa::makeI(Opcode::Addi, r, r, 1), line);
        emitJmpTo(loop, line);
        placeLabel(done);
        emit(isa::makeLi(r, 0), line);
        return;
    }
    if (e.name == "read_int") {
        argc(0);
        emit(isa::makeSys(isa::Syscall::ReadInt, r, 0), line);
        return;
    }
    if (e.name == "read_char") {
        argc(0);
        emit(isa::makeSys(isa::Syscall::ReadChar, r, 0), line);
        return;
    }
    if (e.name == "malloc") {
        argc(1);
        genExpr(*e.args[0], depth);
        emit(isa::makeI(Opcode::Addi, reg::s0, r,
                        2 * static_cast<int32_t>(guardW)), line);
        emit(isa::makeR(Opcode::Alloc, reg::s1, reg::s0, 0), line);
        emit(isa::makeI(Opcode::Addi, reg::s1, reg::s1,
                        static_cast<int32_t>(guardW)), line);
        emit(Instruction{Opcode::Regobj, 0, reg::s1, r,
                         static_cast<int32_t>(ObjectKind::HeapBlock)},
             line);
        emit(isa::makeI(Opcode::Addi, r, reg::s1, 0), line);
        return;
    }
    if (e.name == "free") {
        argc(1);
        genExpr(*e.args[0], depth);
        emit(Instruction{Opcode::Unregobj, 0, r, 0, 0}, line);
        return;
    }
    if (e.name == "exit") {
        argc(0);
        emit(isa::makeSys(isa::Syscall::Exit), line);
        emit(isa::makeLi(r, 0), line);
        return;
    }

    // ---- user call ----
    int n = static_cast<int>(e.args.size());
    for (int i = 0; i < n; ++i)
        genExpr(*e.args[i], depth + i);

    // Save live evaluation registers first, then push the arguments
    // on top so the callee finds arg i at fp + 2 + i.
    if (depth > 0) {
        emit(isa::makeI(Opcode::Addi, reg::sp, reg::sp, -depth), line);
        for (int j = 0; j < depth; ++j) {
            emit(Instruction{Opcode::St, 0, reg::sp, evalReg(j), j},
                 line);
        }
    }
    if (n > 0) {
        emit(isa::makeI(Opcode::Addi, reg::sp, reg::sp, -n), line);
        for (int i = 0; i < n; ++i) {
            emit(Instruction{Opcode::St, 0, reg::sp,
                             evalReg(depth + i), i}, line);
        }
    }
    emitCallTo(e.name, line);
    if (n > 0)
        emit(isa::makeI(Opcode::Addi, reg::sp, reg::sp, n), line);
    if (depth > 0) {
        for (int j = 0; j < depth; ++j)
            emit(isa::makeI(Opcode::Ld, evalReg(j), reg::sp, j), line);
        emit(isa::makeI(Opcode::Addi, reg::sp, reg::sp, depth), line);
    }
    emit(isa::makeI(Opcode::Addi, r, reg::rv, 0), line);
}

void
CodeGen::genExpr(const Expr &e, int depth)
{
    uint8_t r = evalReg(depth);
    switch (e.kind) {
      case ExprKind::IntLit:
        emit(isa::makeLi(r, e.intValue), e.line);
        return;
      case ExprKind::StrLit:
        emit(isa::makeLi(r, static_cast<int32_t>(internString(e.name))),
             e.line);
        return;
      case ExprKind::Ident:
        genIdentLoad(e, depth);
        return;

      case ExprKind::Unary:
        switch (e.unOp) {
          case UnOp::Neg:
            genExpr(*e.a, depth);
            emit(isa::makeR(Opcode::Sub, r, reg::zero, r), e.line);
            return;
          case UnOp::Not:
            genExpr(*e.a, depth);
            emit(isa::makeR(Opcode::Seq, r, r, reg::zero), e.line);
            return;
          case UnOp::Deref:
            genExpr(*e.a, depth);
            emit(isa::makeI(Opcode::Chkb, 0, r, 0), e.line);
            emit(isa::makeI(Opcode::Ld, r, r, 0), e.line);
            return;
          case UnOp::AddrOf: {
            const Expr &lv = *e.a;
            if (lv.kind == ExprKind::Ident) {
                if (const LocalSym *local = findLocal(lv.name)) {
                    emit(isa::makeI(Opcode::Addi, r, reg::fp,
                                    local->off), e.line);
                } else if (const GlobalSym *g = findGlobal(lv.name)) {
                    emit(isa::makeLi(r,
                                     static_cast<int32_t>(g->addr)),
                         e.line);
                } else {
                    error(e.line,
                          "undefined variable '" + lv.name + "'");
                }
            } else if (lv.kind == ExprKind::Index) {
                genExpr(*lv.a, depth);
                genExpr(*lv.b, depth + 1);
                emit(isa::makeR(Opcode::Add, r, r, evalReg(depth + 1)),
                     e.line);
            } else {    // &*e == e
                genExpr(*lv.a, depth);
            }
            return;
          }
        }
        return;

      case ExprKind::Binary: {
        if (e.binOp == BinOp::LogAnd || e.binOp == BinOp::LogOr) {
            int shortLbl = newLabel();
            int endLbl = newLabel();
            genExpr(*e.a, depth);
            if (e.binOp == BinOp::LogAnd)
                emitBranchTo(Opcode::Beq, r, reg::zero, shortLbl,
                             e.line);
            else
                emitBranchTo(Opcode::Bne, r, reg::zero, shortLbl,
                             e.line);
            genExpr(*e.b, depth);
            emit(isa::makeR(Opcode::Sne, r, r, reg::zero), e.line);
            emitJmpTo(endLbl, e.line);
            placeLabel(shortLbl);
            emit(isa::makeLi(r, e.binOp == BinOp::LogAnd ? 0 : 1),
                 e.line);
            placeLabel(endLbl);
            return;
        }

        genExpr(*e.a, depth);
        genExpr(*e.b, depth + 1);
        uint8_t r2 = evalReg(depth + 1);
        Opcode op;
        switch (e.binOp) {
          case BinOp::Add: op = Opcode::Add; break;
          case BinOp::Sub: op = Opcode::Sub; break;
          case BinOp::Mul: op = Opcode::Mul; break;
          case BinOp::Div: op = Opcode::Div; break;
          case BinOp::Rem: op = Opcode::Rem; break;
          case BinOp::And: op = Opcode::And; break;
          case BinOp::Or: op = Opcode::Or; break;
          case BinOp::Xor: op = Opcode::Xor; break;
          case BinOp::Shl: op = Opcode::Shl; break;
          case BinOp::Shr: op = Opcode::Shr; break;
          case BinOp::Eq: op = Opcode::Seq; break;
          case BinOp::Ne: op = Opcode::Sne; break;
          case BinOp::Lt: op = Opcode::Slt; break;
          case BinOp::Le: op = Opcode::Sle; break;
          case BinOp::Gt: op = Opcode::Sgt; break;
          case BinOp::Ge: op = Opcode::Sge; break;
          default:
            pe_panic("unhandled binop");
        }
        emit(isa::makeR(op, r, r, r2), e.line);
        return;
      }

      case ExprKind::Assign:
        genAssign(e, depth);
        return;
      case ExprKind::Call:
        genCall(e, depth);
        return;
      case ExprKind::Index: {
        genExpr(*e.a, depth);
        genExpr(*e.b, depth + 1);
        emit(isa::makeR(Opcode::Add, r, r, evalReg(depth + 1)),
             e.line);
        emit(isa::makeI(Opcode::Chkb, 0, r, 0), e.line);
        emit(isa::makeI(Opcode::Ld, r, r, 0), e.line);
        return;
      }
    }
    pe_panic("unhandled expression kind");
}

// ---- conditions and fixing ---------------------------------------------

std::optional<FixHome>
CodeGen::homeOf(const Expr &e) const
{
    if (e.kind != ExprKind::Ident)
        return std::nullopt;
    if (const LocalSym *local = findLocal(e.name)) {
        if (local->isArray)
            return std::nullopt;
        FixHome h;
        h.isGlobal = false;
        h.fpOff = local->off;
        return h;
    }
    if (const GlobalSym *g = findGlobal(e.name)) {
        if (g->isArray)
            return std::nullopt;
        FixHome h;
        h.isGlobal = true;
        h.addr = g->addr;
        return h;
    }
    return std::nullopt;
}

bool
CodeGen::identIsPointer(const Expr &e) const
{
    if (e.kind != ExprKind::Ident)
        return false;
    if (const LocalSym *local = findLocal(e.name))
        return local->isPointer;
    if (const GlobalSym *g = findGlobal(e.name))
        return g->isPointer;
    return false;
}

namespace
{

/** Branch op taken when the relation is FALSE. */
Opcode
inverseBranch(BinOp op)
{
    switch (op) {
      case BinOp::Eq: return Opcode::Bne;
      case BinOp::Ne: return Opcode::Beq;
      case BinOp::Lt: return Opcode::Bge;
      case BinOp::Le: return Opcode::Bgt;
      case BinOp::Gt: return Opcode::Ble;
      case BinOp::Ge: return Opcode::Blt;
      default:
        pe_panic("not a relational op");
    }
}

BinOp
mirrorRelop(BinOp op)
{
    switch (op) {
      case BinOp::Eq: return BinOp::Eq;
      case BinOp::Ne: return BinOp::Ne;
      case BinOp::Lt: return BinOp::Gt;
      case BinOp::Le: return BinOp::Ge;
      case BinOp::Gt: return BinOp::Lt;
      case BinOp::Ge: return BinOp::Le;
      default:
        pe_panic("not a relational op");
    }
}

bool
isRelop(BinOp op)
{
    switch (op) {
      case BinOp::Eq: case BinOp::Ne: case BinOp::Lt:
      case BinOp::Le: case BinOp::Gt: case BinOp::Ge:
        return true;
      default:
        return false;
    }
}

constexpr int32_t intMin = std::numeric_limits<int32_t>::min();
constexpr int32_t intMax = std::numeric_limits<int32_t>::max();

/** Boundary values making `var RELOP c` true / false (Section 4.4). */
void
boundaryValues(BinOp op, int32_t c, CondFix &fix)
{
    auto setTrue = [&](int64_t v) {
        if (v >= intMin && v <= intMax) {
            fix.hasTrueVal = true;
            fix.trueVal = static_cast<int32_t>(v);
        }
    };
    auto setFalse = [&](int64_t v) {
        if (v >= intMin && v <= intMax) {
            fix.hasFalseVal = true;
            fix.falseVal = static_cast<int32_t>(v);
        }
    };
    int64_t cc = c;
    switch (op) {
      case BinOp::Lt: setTrue(cc - 1); setFalse(cc); break;
      case BinOp::Le: setTrue(cc); setFalse(cc + 1); break;
      case BinOp::Gt: setTrue(cc + 1); setFalse(cc); break;
      case BinOp::Ge: setTrue(cc); setFalse(cc - 1); break;
      case BinOp::Eq:
        setTrue(cc);
        setFalse(cc == intMax ? cc - 1 : cc + 1);
        break;
      case BinOp::Ne:
        setTrue(cc == intMax ? cc - 1 : cc + 1);
        setFalse(cc);
        break;
      default:
        pe_panic("not a relational op");
    }
}

} // namespace

CondFix
CodeGen::genCondBranchFalse(const Expr &cond, int falseLabel)
{
    CondFix fix;

    // Shape: var RELOP literal (possibly mirrored), incl. pointer
    // null tests (p == 0 / p != 0).
    if (cond.kind == ExprKind::Binary && isRelop(cond.binOp)) {
        const Expr *var = cond.a.get();
        const Expr *lit = cond.b.get();
        BinOp op = cond.binOp;
        if (var->kind == ExprKind::IntLit &&
            lit->kind == ExprKind::Ident) {
            std::swap(var, lit);
            op = mirrorRelop(op);
        }
        if (var->kind == ExprKind::Ident &&
            lit->kind == ExprKind::IntLit) {
            genExpr(*var, 0);
            genExpr(*lit, 1);
            emitBranchTo(inverseBranch(op), evalReg(0), evalReg(1),
                         falseLabel, cond.line);
            if (auto home = homeOf(*var)) {
                bool pointer = identIsPointer(*var);
                if (pointer) {
                    // Only null tests are fixable for pointers.
                    if (lit->intValue == 0 &&
                        (op == BinOp::Eq || op == BinOp::Ne)) {
                        fix.valid = true;
                        fix.home = *home;
                        fix.hasTrueVal = fix.hasFalseVal = true;
                        bool eq = op == BinOp::Eq;
                        fix.trueVal =
                            eq ? 0 : static_cast<int32_t>(blankAddr);
                        fix.falseVal =
                            eq ? static_cast<int32_t>(blankAddr) : 0;
                    }
                } else {
                    fix.valid = true;
                    fix.home = *home;
                    boundaryValues(op, lit->intValue, fix);
                }
            }
            return fix;
        }
        // var RELOP var: direct branch, no fix (the fix would need a
        // runtime value; see DESIGN.md).
        genExpr(*cond.a, 0);
        genExpr(*cond.b, 1);
        emitBranchTo(inverseBranch(cond.binOp), evalReg(0), evalReg(1),
                     falseLabel, cond.line);
        return fix;
    }

    // Shape: !var.
    if (cond.kind == ExprKind::Unary && cond.unOp == UnOp::Not &&
        cond.a->kind == ExprKind::Ident) {
        genExpr(*cond.a, 0);
        emitBranchTo(Opcode::Bne, evalReg(0), reg::zero, falseLabel,
                     cond.line);
        if (auto home = homeOf(*cond.a)) {
            fix.valid = true;
            fix.home = *home;
            fix.hasTrueVal = fix.hasFalseVal = true;
            fix.trueVal = 0;
            fix.falseVal = identIsPointer(*cond.a)
                               ? static_cast<int32_t>(blankAddr)
                               : 1;
        }
        return fix;
    }

    // Shape: bare var.
    if (cond.kind == ExprKind::Ident) {
        genExpr(cond, 0);
        emitBranchTo(Opcode::Beq, evalReg(0), reg::zero, falseLabel,
                     cond.line);
        if (auto home = homeOf(cond)) {
            fix.valid = true;
            fix.home = *home;
            fix.hasTrueVal = fix.hasFalseVal = true;
            fix.trueVal = identIsPointer(cond)
                              ? static_cast<int32_t>(blankAddr)
                              : 1;
            fix.falseVal = 0;
        }
        return fix;
    }

    // Generic condition: materialize and test against zero.
    genExpr(cond, 0);
    emitBranchTo(Opcode::Beq, evalReg(0), reg::zero, falseLabel,
                 cond.line);
    return fix;
}

void
CodeGen::emitEdgeFix(const CondFix &fix, bool trueEdge, int line)
{
    if (!fix.valid)
        return;
    bool has = trueEdge ? fix.hasTrueVal : fix.hasFalseVal;
    if (!has)
        return;
    int32_t value = trueEdge ? fix.trueVal : fix.falseVal;
    emit(isa::makeI(Opcode::Pfix, reg::s3, 0, value), line);
    if (fix.home.isGlobal) {
        emit(Instruction{Opcode::Pfixst, 0, reg::zero, reg::s3,
                         static_cast<int32_t>(fix.home.addr)}, line);
    } else {
        emit(Instruction{Opcode::Pfixst, 0, reg::fp, reg::s3,
                         fix.home.fpOff}, line);
    }
}

// ---- statements -----------------------------------------------------------

void
CodeGen::genVarDecl(const Stmt &s)
{
    if (scopes.back().count(s.name))
        error(s.line, "redefinition of '" + s.name + "'");

    LocalSym sym;
    sym.isPointer = s.isPointer;
    if (s.isArray) {
        sym.isArray = true;
        sym.size = s.arraySize;
        int32_t total = s.arraySize + 2 * static_cast<int32_t>(guardW);
        int32_t firstSlot = nextSlot;
        nextSlot += total;
        // Payload base address = fp + (guardW - firstSlot - total).
        sym.off = static_cast<int32_t>(guardW) - firstSlot - total;
        scopes.back().emplace(s.name, sym);
        funcArrays.emplace_back(sym.off, sym.size);

        emit(isa::makeI(Opcode::Addi, reg::s0, reg::fp, sym.off),
             s.line);
        emit(isa::makeLi(reg::s1, sym.size), s.line);
        emit(Instruction{Opcode::Regobj, 0, reg::s0, reg::s1,
                         static_cast<int32_t>(ObjectKind::StackArray)},
             s.line);
        return;
    }

    sym.off = -(1 + nextSlot);
    ++nextSlot;
    scopes.back().emplace(s.name, sym);
    if (s.init) {
        genExpr(*s.init, 0);
        emit(Instruction{Opcode::St, 0, reg::fp, evalReg(0), sym.off},
             s.line);
    }
}

void
CodeGen::genIf(const Stmt &s)
{
    int elseLbl = newLabel();
    int endLbl = newLabel();
    CondFix fix = genCondBranchFalse(*s.cond, elseLbl);
    emitEdgeFix(fix, /*trueEdge=*/true, s.line);
    genStmt(*s.thenS);
    emitJmpTo(endLbl, s.line);
    placeLabel(elseLbl);
    emitEdgeFix(fix, /*trueEdge=*/false, s.line);
    if (s.elseS)
        genStmt(*s.elseS);
    placeLabel(endLbl);
}

void
CodeGen::genWhile(const Stmt &s)
{
    int condLbl = newLabel();
    int falseLbl = newLabel();
    int endLbl = newLabel();
    placeLabel(condLbl);
    CondFix fix = genCondBranchFalse(*s.cond, falseLbl);
    emitEdgeFix(fix, /*trueEdge=*/true, s.line);
    breakLabels.push_back(endLbl);
    continueLabels.push_back(condLbl);
    genStmt(*s.thenS);
    breakLabels.pop_back();
    continueLabels.pop_back();
    emitJmpTo(condLbl, s.line);
    placeLabel(falseLbl);
    emitEdgeFix(fix, /*trueEdge=*/false, s.line);
    placeLabel(endLbl);
}

void
CodeGen::genFor(const Stmt &s)
{
    scopes.emplace_back();      // for-scope (init declaration)
    if (s.initS)
        genStmt(*s.initS);

    int condLbl = newLabel();
    int stepLbl = newLabel();
    int falseLbl = newLabel();
    int endLbl = newLabel();

    placeLabel(condLbl);
    CondFix fix;
    if (s.cond) {
        fix = genCondBranchFalse(*s.cond, falseLbl);
        emitEdgeFix(fix, /*trueEdge=*/true, s.line);
    }
    breakLabels.push_back(endLbl);
    continueLabels.push_back(stepLbl);
    genStmt(*s.thenS);
    breakLabels.pop_back();
    continueLabels.pop_back();
    placeLabel(stepLbl);
    if (s.step) {
        genExpr(*s.step, 0);
    }
    emitJmpTo(condLbl, s.line);
    placeLabel(falseLbl);
    if (s.cond)
        emitEdgeFix(fix, /*trueEdge=*/false, s.line);
    placeLabel(endLbl);
    scopes.pop_back();
}

void
CodeGen::genStmt(const Stmt &s)
{
    switch (s.kind) {
      case StmtKind::Block:
        scopes.emplace_back();
        for (const auto &child : s.body)
            genStmt(*child);
        scopes.pop_back();
        return;
      case StmtKind::VarDecl:
        genVarDecl(s);
        return;
      case StmtKind::If:
        genIf(s);
        return;
      case StmtKind::While:
        genWhile(s);
        return;
      case StmtKind::For:
        genFor(s);
        return;
      case StmtKind::Return:
        if (s.expr) {
            genExpr(*s.expr, 0);
            emit(isa::makeI(Opcode::Addi, reg::rv, evalReg(0), 0),
                 s.line);
        } else {
            emit(isa::makeLi(reg::rv, 0), s.line);
        }
        emitJmpTo(epilogueLabel, s.line);
        return;
      case StmtKind::Break:
        if (breakLabels.empty())
            error(s.line, "break outside a loop");
        emitJmpTo(breakLabels.back(), s.line);
        return;
      case StmtKind::Continue:
        if (continueLabels.empty())
            error(s.line, "continue outside a loop");
        emitJmpTo(continueLabels.back(), s.line);
        return;
      case StmtKind::Assert: {
        int32_t id = s.assertId ? s.assertId : s.line;
        genExpr(*s.expr, 0);
        emit(Instruction{Opcode::Assert, 0, evalReg(0), 0, id},
             s.line);
        program.assertLocs[id] = isa::SourceLoc{s.line, 0};
        return;
      }
      case StmtKind::ExprStmt:
        genExpr(*s.expr, 0);
        return;
    }
    pe_panic("unhandled statement kind");
}

// ---- functions --------------------------------------------------------------

void
CodeGen::genFunc(const FuncDecl &func)
{
    if (funcPc.count(func.name))
        pe_fatal("minic: redefinition of function '", func.name, "'");
    uint32_t start = static_cast<uint32_t>(program.code.size());
    funcPc.emplace(func.name, start);

    scopes.clear();
    scopes.emplace_back();
    nextSlot = 0;
    funcArrays.clear();
    epilogueLabel = newLabel();
    breakLabels.clear();
    continueLabels.clear();

    // Parameters: pushed by the caller; arg i lives at fp + 2 + i.
    for (size_t i = 0; i < func.params.size(); ++i) {
        LocalSym sym;
        sym.isPointer = func.paramIsPointer[i];
        sym.off = 2 + static_cast<int32_t>(i);
        if (scopes.back().count(func.params[i]))
            error(func.line, "duplicate parameter '" + func.params[i] +
                                 "'");
        scopes.back().emplace(func.params[i], sym);
    }

    int line = func.line;
    // Prologue: push ra, push fp, set up the frame.
    emit(isa::makeI(Opcode::Addi, reg::sp, reg::sp, -1), line);
    emit(Instruction{Opcode::St, 0, reg::sp, reg::ra, 0}, line);
    emit(isa::makeI(Opcode::Addi, reg::sp, reg::sp, -1), line);
    emit(Instruction{Opcode::St, 0, reg::sp, reg::fp, 0}, line);
    emit(isa::makeI(Opcode::Addi, reg::fp, reg::sp, 0), line);
    frameFixupPc =
        emit(isa::makeI(Opcode::Addi, reg::sp, reg::sp, 0), line);

    genStmt(*func.body);

    // Implicit `return 0` at the end of the body.
    emit(isa::makeLi(reg::rv, 0), line);

    placeLabel(epilogueLabel);
    for (const auto &[off, size] : funcArrays) {
        emit(isa::makeI(Opcode::Addi, reg::s0, reg::fp, off), line);
        emit(Instruction{Opcode::Unregobj, 0, reg::s0, 0, 0}, line);
    }
    emit(isa::makeI(Opcode::Addi, reg::sp, reg::fp, 0), line);
    emit(isa::makeI(Opcode::Ld, reg::fp, reg::sp, 0), line);
    emit(isa::makeI(Opcode::Ld, reg::ra, reg::sp, 1), line);
    emit(isa::makeI(Opcode::Addi, reg::sp, reg::sp, 2), line);
    emit(isa::makeJr(reg::ra), line);

    // Patch the frame-allocation placeholder.
    program.code[frameFixupPc].imm = -nextSlot;

    isa::FuncInfo info;
    info.name = func.name;
    info.startPc = start;
    info.endPc = static_cast<uint32_t>(program.code.size());
    program.funcs.push_back(info);
}

void
CodeGen::genStub()
{
    program.entry = static_cast<uint32_t>(program.code.size());
    int line = 0;
    for (const auto &entry : startupRegs) {
        emit(isa::makeLi(reg::s0, static_cast<int32_t>(entry.addr)),
             line);
        emit(isa::makeLi(reg::s1, entry.size), line);
        emit(Instruction{Opcode::Regobj, 0, reg::s0, reg::s1,
                         static_cast<int32_t>(entry.kind)}, line);
    }
    emitCallTo("main", line);
    emit(isa::makeSys(isa::Syscall::Exit), line);

    isa::FuncInfo info;
    info.name = "_start";
    info.startPc = program.entry;
    info.endPc = static_cast<uint32_t>(program.code.size());
    program.funcs.push_back(info);
}

void
CodeGen::patchFixups()
{
    for (const auto &f : labelFixups) {
        auto it = labelPc.find(f.label);
        pe_assert(it != labelPc.end(), "unplaced label");
        program.code[f.pc].imm = static_cast<int32_t>(it->second);
    }
    for (const auto &f : callFixups) {
        auto it = funcPc.find(f.func);
        if (it == funcPc.end()) {
            pe_fatal("minic: call to undefined function '", f.func,
                     "' at line ", f.line, " in ", program.name);
        }
        program.code[f.pc].imm = static_cast<int32_t>(it->second);
    }
}

isa::Program
CodeGen::run()
{
    // Blank structure first (Section 4.4: created at program start).
    blankAddr = allocGuarded(blankStructWords, ObjectKind::BlankStruct);
    program.blankAddr = blankAddr;

    // Globals.
    for (const auto &g : unit.globals) {
        if (globals.count(g.name))
            pe_fatal("minic: redefinition of global '", g.name, "'");
        GlobalSym sym;
        sym.isPointer = g.isPointer;
        if (g.isArray) {
            sym.isArray = true;
            sym.size = g.arraySize;
            sym.addr = allocGuarded(g.arraySize,
                                    ObjectKind::GlobalArray);
            for (size_t i = 0; i < g.arrayInit.size(); ++i)
                data[sym.addr - program.dataBase + i] = g.arrayInit[i];
        } else {
            sym.addr = allocScalar(g.initValue);
        }
        globals.emplace(g.name, sym);
    }

    for (const auto &func : unit.funcs)
        genFunc(func);
    if (!funcPc.count("main"))
        pe_fatal("minic: no 'main' function in ", program.name);
    genStub();
    patchFixups();

    program.dataInit = data;
    program.heapBase =
        program.dataBase + static_cast<uint32_t>(data.size());
    return std::move(program);
}

} // namespace

isa::Program
generate(const TranslationUnit &unit, const std::string &name)
{
    return CodeGen(unit, name).run();
}

} // namespace pe::minic
