/**
 * @file
 * MiniC recursive-descent parser.
 */

#ifndef PE_MINIC_PARSER_HH
#define PE_MINIC_PARSER_HH

#include <vector>

#include "src/minic/ast.hh"
#include "src/minic/token.hh"

namespace pe::minic
{

/** Parse @p tokens; throws FatalError on syntax errors. */
TranslationUnit parse(const std::vector<Token> &tokens);

} // namespace pe::minic

#endif // PE_MINIC_PARSER_HH
