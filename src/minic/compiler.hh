/**
 * @file
 * MiniC compiler driver: source text to a loadable PE-RISC program.
 */

#ifndef PE_MINIC_COMPILER_HH
#define PE_MINIC_COMPILER_HH

#include <string>

#include "src/isa/program.hh"

namespace pe::minic
{

/**
 * Compile MiniC @p source into a program image named @p name.
 * Throws FatalError on lexical, syntax or semantic errors.
 */
isa::Program compile(const std::string &source, const std::string &name);

} // namespace pe::minic

#endif // PE_MINIC_COMPILER_HH
