/**
 * @file
 * MiniC abstract syntax tree.
 *
 * All values are 32-bit words; 'int' and 'int*' share one machine
 * representation, but declarations record pointer-ness so the code
 * generator can pick the right consistency-fix value (blank-structure
 * address vs. boundary integer, paper Section 4.4).
 */

#ifndef PE_MINIC_AST_HH
#define PE_MINIC_AST_HH

#include <memory>
#include <string>
#include <vector>

namespace pe::minic
{

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/** Binary operators. */
enum class BinOp : uint8_t
{
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
    LogAnd, LogOr,
};

/** Unary operators. */
enum class UnOp : uint8_t
{
    Neg,        //!< -e
    Not,        //!< !e
    Deref,      //!< *e
    AddrOf,     //!< &lvalue
};

/** Expression node kinds. */
enum class ExprKind : uint8_t
{
    IntLit,     //!< integer / character literal
    StrLit,     //!< string literal (decays to payload address)
    Ident,      //!< variable reference (array names decay to address)
    Unary,
    Binary,
    Assign,     //!< lhs = rhs (lhs: Ident, Deref or Index)
    Call,       //!< function call or builtin
    Index,      //!< base[index]
};

/** One expression node. */
struct Expr
{
    ExprKind kind;
    int line = 0;

    // IntLit
    int32_t intValue = 0;
    // StrLit / Ident / Call
    std::string name;
    // Unary / Binary
    UnOp unOp = UnOp::Neg;
    BinOp binOp = BinOp::Add;
    // Children: Unary(a), Binary(a,b), Assign(a=lhs,b=rhs),
    // Index(a=base,b=index).
    ExprPtr a;
    ExprPtr b;
    // Call arguments.
    std::vector<ExprPtr> args;
};

/** Statement node kinds. */
enum class StmtKind : uint8_t
{
    Block,
    VarDecl,    //!< int x; int x = e; int a[N]; int *p;
    If,
    While,
    For,
    Return,
    Break,
    Continue,
    Assert,     //!< assert(expr) or assert(expr, id)
    ExprStmt,
};

/** One statement node. */
struct Stmt
{
    StmtKind kind;
    int line = 0;

    // Block
    std::vector<StmtPtr> body;
    // VarDecl
    std::string name;
    bool isPointer = false;
    bool isArray = false;
    int32_t arraySize = 0;
    ExprPtr init;
    // If: cond/thenS/elseS; While: cond/thenS;
    // For: init=initS, cond, step, thenS (body).
    ExprPtr cond;
    StmtPtr initS;
    ExprPtr step;
    StmtPtr thenS;
    StmtPtr elseS;
    // Return / ExprStmt / Assert
    ExprPtr expr;
    int32_t assertId = 0;   //!< 0 = derive from the source line
};

/** One function definition. */
struct FuncDecl
{
    std::string name;
    int line = 0;
    std::vector<std::string> params;
    std::vector<bool> paramIsPointer;
    StmtPtr body;
};

/** One global variable. */
struct GlobalDecl
{
    std::string name;
    int line = 0;
    bool isPointer = false;
    bool isArray = false;
    int32_t arraySize = 0;
    int32_t initValue = 0;
    std::vector<int32_t> arrayInit;     //!< optional array initializer
};

/** A parsed translation unit. */
struct TranslationUnit
{
    std::vector<GlobalDecl> globals;
    std::vector<FuncDecl> funcs;
};

} // namespace pe::minic

#endif // PE_MINIC_AST_HH
