/**
 * @file
 * MiniC tokens.
 *
 * MiniC is the small C-like language in which the evaluation
 * workloads are written.  It compiles to PE-RISC via src/minic; the
 * code generator is also the "compiler" of the paper's Section 4.4:
 * it inserts the predicated variable-fixing instructions at every
 * branch edge and allocates the blank structure.
 */

#ifndef PE_MINIC_TOKEN_HH
#define PE_MINIC_TOKEN_HH

#include <cstdint>
#include <string>

namespace pe::minic
{

enum class TokenKind : uint8_t
{
    EndOfFile,
    // Literals and identifiers.
    IntLit, CharLit, StrLit, Ident,
    // Keywords.
    KwInt, KwIf, KwElse, KwWhile, KwFor, KwReturn, KwBreak,
    KwContinue, KwAssert,
    // Punctuation.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semicolon,
    // Operators.
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Shl, Shr,
    AmpAmp, PipePipe, Bang,
    Assign,
    Eq, Ne, Lt, Le, Gt, Ge,
};

const char *tokenKindName(TokenKind kind);

/** One lexed token. */
struct Token
{
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;       //!< identifier / literal spelling
    int32_t intValue = 0;   //!< value of IntLit / CharLit
    int line = 0;
    int col = 0;
};

} // namespace pe::minic

#endif // PE_MINIC_TOKEN_HH
