/**
 * @file
 * MiniC parser implementation.
 *
 * Grammar (EBNF):
 *   unit      := (global | func)*
 *   global    := 'int' '*'? ident ('=' '-'? intlit)? ';'
 *              | 'int' ident '[' intlit ']' ('=' '{' intlist '}')? ';'
 *   func      := 'int' ident '(' params? ')' block
 *   params    := 'int' '*'? ident (',' 'int' '*'? ident)*
 *   block     := '{' stmt* '}'
 *   stmt      := block | vardecl | if | while | for | return
 *              | break ';' | continue ';' | assert | expr ';'
 *   vardecl   := 'int' '*'? ident ('=' expr)? ';'
 *              | 'int' ident '[' intlit ']' ';'
 *   if        := 'if' '(' expr ')' stmt ('else' stmt)?
 *   while     := 'while' '(' expr ')' stmt
 *   for       := 'for' '(' forinit? ';' expr? ';' expr? ')' stmt
 *   assert    := 'assert' '(' expr (',' intlit)? ')' ';'
 *   expr      := assign
 *   assign    := logor ('=' assign)?            (lhs must be lvalue)
 *   logor     := logand ('||' logand)*
 *   logand    := bitor ('&&' bitor)*
 *   bitor     := bitxor ('|' bitxor)*
 *   bitxor    := bitand ('^' bitand)*
 *   bitand    := equality ('&' equality)*
 *   equality  := relational (('=='|'!=') relational)*
 *   relational:= shift (('<'|'<='|'>'|'>=') shift)*
 *   shift     := additive (('<<'|'>>') additive)*
 *   additive  := multiplicative (('+'|'-') multiplicative)*
 *   multiplicative := unary (('*'|'/'|'%') unary)*
 *   unary     := ('-'|'!'|'*'|'&') unary | postfix
 *   postfix   := primary ('[' expr ']' | '(' args ')')*
 *   primary   := intlit | charlit | strlit | ident | '(' expr ')'
 */

#include "src/minic/parser.hh"

#include "src/support/status.hh"

namespace pe::minic
{

namespace
{

class Parser
{
  public:
    explicit Parser(const std::vector<Token> &toks) : tokens(toks) {}

    TranslationUnit run();

  private:
    const Token &peek(size_t ahead = 0) const
    {
        size_t i = pos + ahead;
        return i < tokens.size() ? tokens[i] : tokens.back();
    }

    const Token &advance() { return tokens[pos++]; }

    bool check(TokenKind kind) const { return peek().kind == kind; }

    bool match(TokenKind kind)
    {
        if (!check(kind))
            return false;
        advance();
        return true;
    }

    const Token &expect(TokenKind kind, const char *context)
    {
        if (!check(kind)) {
            pe_fatal("minic parse error at line ", peek().line, ":",
                     peek().col, ": expected ", tokenKindName(kind),
                     " in ", context, ", found ",
                     tokenKindName(peek().kind));
        }
        return advance();
    }

    [[noreturn]] void error(const std::string &msg) const
    {
        pe_fatal("minic parse error at line ", peek().line, ":",
                 peek().col, ": ", msg);
    }

    // Declarations.
    void parseTopLevel(TranslationUnit &unit);
    FuncDecl parseFunc(const Token &name);
    GlobalDecl parseGlobalTail(const Token &name, bool isPointer);

    // Statements.
    StmtPtr parseStmt();
    StmtPtr parseBlock();
    StmtPtr parseVarDecl();
    StmtPtr parseIf();
    StmtPtr parseWhile();
    StmtPtr parseFor();
    StmtPtr parseAssert();

    // Expressions.
    ExprPtr parseExpr();
    ExprPtr parseAssign();
    ExprPtr parseBinary(int minLevel);
    ExprPtr parseUnary();
    ExprPtr parsePostfix();
    ExprPtr parsePrimary();

    static bool isLvalue(const Expr &e)
    {
        return e.kind == ExprKind::Ident ||
               e.kind == ExprKind::Index ||
               (e.kind == ExprKind::Unary && e.unOp == UnOp::Deref);
    }

    ExprPtr makeExpr(ExprKind kind, int line)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = line;
        return e;
    }

    StmtPtr makeStmt(StmtKind kind, int line)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->line = line;
        return s;
    }

    int32_t parseSignedIntLit(const char *context);

    const std::vector<Token> &tokens;
    size_t pos = 0;
};

int32_t
Parser::parseSignedIntLit(const char *context)
{
    bool neg = match(TokenKind::Minus);
    const Token &lit = check(TokenKind::CharLit)
                           ? expect(TokenKind::CharLit, context)
                           : expect(TokenKind::IntLit, context);
    return neg ? -lit.intValue : lit.intValue;
}

TranslationUnit
Parser::run()
{
    TranslationUnit unit;
    while (!check(TokenKind::EndOfFile))
        parseTopLevel(unit);
    return unit;
}

void
Parser::parseTopLevel(TranslationUnit &unit)
{
    expect(TokenKind::KwInt, "top-level declaration");
    bool isPointer = match(TokenKind::Star);
    const Token &name = expect(TokenKind::Ident, "declaration name");

    if (!isPointer && check(TokenKind::LParen)) {
        unit.funcs.push_back(parseFunc(name));
        return;
    }
    unit.globals.push_back(parseGlobalTail(name, isPointer));
}

FuncDecl
Parser::parseFunc(const Token &name)
{
    FuncDecl func;
    func.name = name.text;
    func.line = name.line;
    expect(TokenKind::LParen, "function parameter list");
    if (!check(TokenKind::RParen)) {
        do {
            expect(TokenKind::KwInt, "parameter type");
            bool ptr = match(TokenKind::Star);
            const Token &p = expect(TokenKind::Ident, "parameter name");
            func.params.push_back(p.text);
            func.paramIsPointer.push_back(ptr);
        } while (match(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "function parameter list");
    func.body = parseBlock();
    return func;
}

GlobalDecl
Parser::parseGlobalTail(const Token &name, bool isPointer)
{
    GlobalDecl g;
    g.name = name.text;
    g.line = name.line;
    g.isPointer = isPointer;

    if (!isPointer && match(TokenKind::LBracket)) {
        g.isArray = true;
        g.arraySize = expect(TokenKind::IntLit, "array size").intValue;
        if (g.arraySize <= 0)
            error("array size must be positive");
        expect(TokenKind::RBracket, "array declaration");
        if (match(TokenKind::Assign)) {
            expect(TokenKind::LBrace, "array initializer");
            if (!check(TokenKind::RBrace)) {
                do {
                    g.arrayInit.push_back(
                        parseSignedIntLit("array initializer"));
                } while (match(TokenKind::Comma));
            }
            expect(TokenKind::RBrace, "array initializer");
            if (static_cast<int32_t>(g.arrayInit.size()) > g.arraySize)
                error("too many array initializers");
        }
    } else if (match(TokenKind::Assign)) {
        g.initValue = parseSignedIntLit("global initializer");
    }
    expect(TokenKind::Semicolon, "global declaration");
    return g;
}

StmtPtr
Parser::parseBlock()
{
    const Token &open = expect(TokenKind::LBrace, "block");
    auto block = makeStmt(StmtKind::Block, open.line);
    while (!check(TokenKind::RBrace)) {
        if (check(TokenKind::EndOfFile))
            error("unterminated block");
        block->body.push_back(parseStmt());
    }
    expect(TokenKind::RBrace, "block");
    return block;
}

StmtPtr
Parser::parseStmt()
{
    switch (peek().kind) {
      case TokenKind::LBrace:
        return parseBlock();
      case TokenKind::KwInt:
        return parseVarDecl();
      case TokenKind::KwIf:
        return parseIf();
      case TokenKind::KwWhile:
        return parseWhile();
      case TokenKind::KwFor:
        return parseFor();
      case TokenKind::KwAssert:
        return parseAssert();
      case TokenKind::KwReturn: {
        const Token &kw = advance();
        auto s = makeStmt(StmtKind::Return, kw.line);
        if (!check(TokenKind::Semicolon))
            s->expr = parseExpr();
        expect(TokenKind::Semicolon, "return statement");
        return s;
      }
      case TokenKind::KwBreak: {
        const Token &kw = advance();
        expect(TokenKind::Semicolon, "break statement");
        return makeStmt(StmtKind::Break, kw.line);
      }
      case TokenKind::KwContinue: {
        const Token &kw = advance();
        expect(TokenKind::Semicolon, "continue statement");
        return makeStmt(StmtKind::Continue, kw.line);
      }
      default: {
        auto s = makeStmt(StmtKind::ExprStmt, peek().line);
        s->expr = parseExpr();
        expect(TokenKind::Semicolon, "expression statement");
        return s;
      }
    }
}

StmtPtr
Parser::parseVarDecl()
{
    const Token &kw = expect(TokenKind::KwInt, "variable declaration");
    auto s = makeStmt(StmtKind::VarDecl, kw.line);
    s->isPointer = match(TokenKind::Star);
    s->name = expect(TokenKind::Ident, "variable name").text;

    if (!s->isPointer && match(TokenKind::LBracket)) {
        s->isArray = true;
        s->arraySize = expect(TokenKind::IntLit, "array size").intValue;
        if (s->arraySize <= 0)
            error("array size must be positive");
        expect(TokenKind::RBracket, "array declaration");
    } else if (match(TokenKind::Assign)) {
        s->init = parseExpr();
    }
    expect(TokenKind::Semicolon, "variable declaration");
    return s;
}

StmtPtr
Parser::parseIf()
{
    const Token &kw = advance();
    auto s = makeStmt(StmtKind::If, kw.line);
    expect(TokenKind::LParen, "if condition");
    s->cond = parseExpr();
    expect(TokenKind::RParen, "if condition");
    s->thenS = parseStmt();
    if (match(TokenKind::KwElse))
        s->elseS = parseStmt();
    return s;
}

StmtPtr
Parser::parseWhile()
{
    const Token &kw = advance();
    auto s = makeStmt(StmtKind::While, kw.line);
    expect(TokenKind::LParen, "while condition");
    s->cond = parseExpr();
    expect(TokenKind::RParen, "while condition");
    s->thenS = parseStmt();
    return s;
}

StmtPtr
Parser::parseFor()
{
    const Token &kw = advance();
    auto s = makeStmt(StmtKind::For, kw.line);
    expect(TokenKind::LParen, "for header");
    if (!check(TokenKind::Semicolon)) {
        if (check(TokenKind::KwInt)) {
            s->initS = parseVarDecl();  // consumes the ';'
        } else {
            auto init = makeStmt(StmtKind::ExprStmt, peek().line);
            init->expr = parseExpr();
            expect(TokenKind::Semicolon, "for header");
            s->initS = std::move(init);
        }
    } else {
        advance();
    }
    if (!check(TokenKind::Semicolon))
        s->cond = parseExpr();
    expect(TokenKind::Semicolon, "for header");
    if (!check(TokenKind::RParen))
        s->step = parseExpr();
    expect(TokenKind::RParen, "for header");
    s->thenS = parseStmt();
    return s;
}

StmtPtr
Parser::parseAssert()
{
    const Token &kw = advance();
    auto s = makeStmt(StmtKind::Assert, kw.line);
    expect(TokenKind::LParen, "assert");
    s->expr = parseExpr();
    if (match(TokenKind::Comma))
        s->assertId = expect(TokenKind::IntLit, "assert id").intValue;
    expect(TokenKind::RParen, "assert");
    expect(TokenKind::Semicolon, "assert");
    return s;
}

ExprPtr
Parser::parseExpr()
{
    return parseAssign();
}

ExprPtr
Parser::parseAssign()
{
    ExprPtr lhs = parseBinary(0);
    if (match(TokenKind::Assign)) {
        if (!isLvalue(*lhs))
            error("assignment target is not an lvalue");
        auto e = makeExpr(ExprKind::Assign, lhs->line);
        e->a = std::move(lhs);
        e->b = parseAssign();
        return e;
    }
    return lhs;
}

namespace
{

struct BinLevel
{
    TokenKind token;
    BinOp op;
    int level;
};

// Lowest level binds loosest.
const BinLevel binLevels[] = {
    {TokenKind::PipePipe, BinOp::LogOr, 0},
    {TokenKind::AmpAmp, BinOp::LogAnd, 1},
    {TokenKind::Pipe, BinOp::Or, 2},
    {TokenKind::Caret, BinOp::Xor, 3},
    {TokenKind::Amp, BinOp::And, 4},
    {TokenKind::Eq, BinOp::Eq, 5},
    {TokenKind::Ne, BinOp::Ne, 5},
    {TokenKind::Lt, BinOp::Lt, 6},
    {TokenKind::Le, BinOp::Le, 6},
    {TokenKind::Gt, BinOp::Gt, 6},
    {TokenKind::Ge, BinOp::Ge, 6},
    {TokenKind::Shl, BinOp::Shl, 7},
    {TokenKind::Shr, BinOp::Shr, 7},
    {TokenKind::Plus, BinOp::Add, 8},
    {TokenKind::Minus, BinOp::Sub, 8},
    {TokenKind::Star, BinOp::Mul, 9},
    {TokenKind::Slash, BinOp::Div, 9},
    {TokenKind::Percent, BinOp::Rem, 9},
};
constexpr int maxBinLevel = 9;

} // namespace

ExprPtr
Parser::parseBinary(int minLevel)
{
    if (minLevel > maxBinLevel)
        return parseUnary();

    ExprPtr lhs = parseBinary(minLevel + 1);
    for (;;) {
        const BinLevel *hit = nullptr;
        for (const auto &bl : binLevels) {
            if (bl.level == minLevel && check(bl.token)) {
                hit = &bl;
                break;
            }
        }
        if (!hit)
            return lhs;
        int line = peek().line;
        advance();
        auto e = makeExpr(ExprKind::Binary, line);
        e->binOp = hit->op;
        e->a = std::move(lhs);
        e->b = parseBinary(minLevel + 1);
        lhs = std::move(e);
    }
}

ExprPtr
Parser::parseUnary()
{
    int line = peek().line;
    if (match(TokenKind::Minus)) {
        auto e = makeExpr(ExprKind::Unary, line);
        e->unOp = UnOp::Neg;
        e->a = parseUnary();
        return e;
    }
    if (match(TokenKind::Bang)) {
        auto e = makeExpr(ExprKind::Unary, line);
        e->unOp = UnOp::Not;
        e->a = parseUnary();
        return e;
    }
    if (match(TokenKind::Star)) {
        auto e = makeExpr(ExprKind::Unary, line);
        e->unOp = UnOp::Deref;
        e->a = parseUnary();
        return e;
    }
    if (match(TokenKind::Amp)) {
        auto e = makeExpr(ExprKind::Unary, line);
        e->unOp = UnOp::AddrOf;
        e->a = parseUnary();
        if (!isLvalue(*e->a))
            error("'&' operand is not an lvalue");
        return e;
    }
    return parsePostfix();
}

ExprPtr
Parser::parsePostfix()
{
    ExprPtr e = parsePrimary();
    for (;;) {
        if (match(TokenKind::LBracket)) {
            auto idx = makeExpr(ExprKind::Index, e->line);
            idx->a = std::move(e);
            idx->b = parseExpr();
            expect(TokenKind::RBracket, "index expression");
            e = std::move(idx);
        } else if (check(TokenKind::LParen) &&
                   e->kind == ExprKind::Ident) {
            advance();
            auto call = makeExpr(ExprKind::Call, e->line);
            call->name = e->name;
            if (!check(TokenKind::RParen)) {
                do {
                    call->args.push_back(parseExpr());
                } while (match(TokenKind::Comma));
            }
            expect(TokenKind::RParen, "call");
            e = std::move(call);
        } else {
            return e;
        }
    }
}

ExprPtr
Parser::parsePrimary()
{
    const Token &t = peek();
    switch (t.kind) {
      case TokenKind::IntLit:
      case TokenKind::CharLit: {
        advance();
        auto e = makeExpr(ExprKind::IntLit, t.line);
        e->intValue = t.intValue;
        return e;
      }
      case TokenKind::StrLit: {
        advance();
        auto e = makeExpr(ExprKind::StrLit, t.line);
        e->name = t.text;
        return e;
      }
      case TokenKind::Ident: {
        advance();
        auto e = makeExpr(ExprKind::Ident, t.line);
        e->name = t.text;
        return e;
      }
      case TokenKind::LParen: {
        advance();
        ExprPtr e = parseExpr();
        expect(TokenKind::RParen, "parenthesized expression");
        return e;
      }
      default:
        error("expected an expression");
    }
}

} // namespace

TranslationUnit
parse(const std::vector<Token> &tokens)
{
    return Parser(tokens).run();
}

} // namespace pe::minic
