/**
 * @file
 * MiniC lexer.
 */

#ifndef PE_MINIC_LEXER_HH
#define PE_MINIC_LEXER_HH

#include <string>
#include <vector>

#include "src/minic/token.hh"

namespace pe::minic
{

/**
 * Tokenize @p source.  Throws FatalError (via fatal()) on malformed
 * input.  Supports //-comments and C-style block comments.
 */
std::vector<Token> lex(const std::string &source);

} // namespace pe::minic

#endif // PE_MINIC_LEXER_HH
