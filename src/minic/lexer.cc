/**
 * @file
 * MiniC lexer implementation.
 */

#include "src/minic/lexer.hh"

#include <cctype>
#include <unordered_map>

#include "src/support/status.hh"

namespace pe::minic
{

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::EndOfFile: return "end of file";
      case TokenKind::IntLit: return "integer literal";
      case TokenKind::CharLit: return "character literal";
      case TokenKind::StrLit: return "string literal";
      case TokenKind::Ident: return "identifier";
      case TokenKind::KwInt: return "'int'";
      case TokenKind::KwIf: return "'if'";
      case TokenKind::KwElse: return "'else'";
      case TokenKind::KwWhile: return "'while'";
      case TokenKind::KwFor: return "'for'";
      case TokenKind::KwReturn: return "'return'";
      case TokenKind::KwBreak: return "'break'";
      case TokenKind::KwContinue: return "'continue'";
      case TokenKind::KwAssert: return "'assert'";
      case TokenKind::LParen: return "'('";
      case TokenKind::RParen: return "')'";
      case TokenKind::LBrace: return "'{'";
      case TokenKind::RBrace: return "'}'";
      case TokenKind::LBracket: return "'['";
      case TokenKind::RBracket: return "']'";
      case TokenKind::Comma: return "','";
      case TokenKind::Semicolon: return "';'";
      case TokenKind::Plus: return "'+'";
      case TokenKind::Minus: return "'-'";
      case TokenKind::Star: return "'*'";
      case TokenKind::Slash: return "'/'";
      case TokenKind::Percent: return "'%'";
      case TokenKind::Amp: return "'&'";
      case TokenKind::Pipe: return "'|'";
      case TokenKind::Caret: return "'^'";
      case TokenKind::Shl: return "'<<'";
      case TokenKind::Shr: return "'>>'";
      case TokenKind::AmpAmp: return "'&&'";
      case TokenKind::PipePipe: return "'||'";
      case TokenKind::Bang: return "'!'";
      case TokenKind::Assign: return "'='";
      case TokenKind::Eq: return "'=='";
      case TokenKind::Ne: return "'!='";
      case TokenKind::Lt: return "'<'";
      case TokenKind::Le: return "'<='";
      case TokenKind::Gt: return "'>'";
      case TokenKind::Ge: return "'>='";
    }
    return "?";
}

namespace
{

const std::unordered_map<std::string, TokenKind> keywords = {
    {"int", TokenKind::KwInt},
    {"if", TokenKind::KwIf},
    {"else", TokenKind::KwElse},
    {"while", TokenKind::KwWhile},
    {"for", TokenKind::KwFor},
    {"return", TokenKind::KwReturn},
    {"break", TokenKind::KwBreak},
    {"continue", TokenKind::KwContinue},
    {"assert", TokenKind::KwAssert},
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : source(src) {}

    std::vector<Token> run();

  private:
    char peek(size_t ahead = 0) const
    {
        return pos + ahead < source.size() ? source[pos + ahead] : '\0';
    }

    char advance()
    {
        char c = source[pos++];
        if (c == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        return c;
    }

    bool match(char expected)
    {
        if (peek() != expected)
            return false;
        advance();
        return true;
    }

    [[noreturn]] void error(const std::string &msg) const
    {
        pe_fatal("minic lex error at line ", line, ":", col, ": ", msg);
    }

    Token make(TokenKind kind, int atLine, int atCol) const
    {
        Token t;
        t.kind = kind;
        t.line = atLine;
        t.col = atCol;
        return t;
    }

    int32_t escapedChar(char c) const
    {
        switch (c) {
          case 'n': return '\n';
          case 't': return '\t';
          case 'r': return '\r';
          case '0': return '\0';
          case '\\': return '\\';
          case '\'': return '\'';
          case '"': return '"';
          default:
            error(std::string("unknown escape '\\") + c + "'");
        }
    }

    const std::string &source;
    size_t pos = 0;
    int line = 1;
    int col = 1;
};

std::vector<Token>
Lexer::run()
{
    std::vector<Token> tokens;
    while (pos < source.size()) {
        int atLine = line;
        int atCol = col;
        char c = advance();

        if (std::isspace(static_cast<unsigned char>(c)))
            continue;

        // Comments.
        if (c == '/' && peek() == '/') {
            while (pos < source.size() && peek() != '\n')
                advance();
            continue;
        }
        if (c == '/' && peek() == '*') {
            advance();
            while (pos < source.size() &&
                   !(peek() == '*' && peek(1) == '/')) {
                advance();
            }
            if (pos >= source.size())
                error("unterminated block comment");
            advance();
            advance();
            continue;
        }

        // Identifiers and keywords.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string text(1, c);
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_') {
                text.push_back(advance());
            }
            auto it = keywords.find(text);
            Token t = make(it != keywords.end() ? it->second
                                                : TokenKind::Ident,
                           atLine, atCol);
            t.text = text;
            tokens.push_back(t);
            continue;
        }

        // Integer literals (decimal only; leading '-' is a unary op).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            int64_t value = c - '0';
            while (std::isdigit(static_cast<unsigned char>(peek()))) {
                value = value * 10 + (advance() - '0');
                if (value > 0x7fffffffll)
                    error("integer literal out of range");
            }
            Token t = make(TokenKind::IntLit, atLine, atCol);
            t.intValue = static_cast<int32_t>(value);
            tokens.push_back(t);
            continue;
        }

        // Character literals.
        if (c == '\'') {
            if (pos >= source.size())
                error("unterminated character literal");
            char d = advance();
            int32_t value =
                d == '\\' ? escapedChar(advance())
                          : static_cast<int32_t>(
                                static_cast<unsigned char>(d));
            if (!match('\''))
                error("unterminated character literal");
            Token t = make(TokenKind::CharLit, atLine, atCol);
            t.intValue = value;
            tokens.push_back(t);
            continue;
        }

        // String literals.
        if (c == '"') {
            std::string text;
            for (;;) {
                if (pos >= source.size())
                    error("unterminated string literal");
                char d = advance();
                if (d == '"')
                    break;
                if (d == '\\')
                    text.push_back(
                        static_cast<char>(escapedChar(advance())));
                else
                    text.push_back(d);
            }
            Token t = make(TokenKind::StrLit, atLine, atCol);
            t.text = text;
            tokens.push_back(t);
            continue;
        }

        // Operators and punctuation.
        TokenKind kind;
        switch (c) {
          case '(': kind = TokenKind::LParen; break;
          case ')': kind = TokenKind::RParen; break;
          case '{': kind = TokenKind::LBrace; break;
          case '}': kind = TokenKind::RBrace; break;
          case '[': kind = TokenKind::LBracket; break;
          case ']': kind = TokenKind::RBracket; break;
          case ',': kind = TokenKind::Comma; break;
          case ';': kind = TokenKind::Semicolon; break;
          case '+': kind = TokenKind::Plus; break;
          case '-': kind = TokenKind::Minus; break;
          case '*': kind = TokenKind::Star; break;
          case '/': kind = TokenKind::Slash; break;
          case '%': kind = TokenKind::Percent; break;
          case '^': kind = TokenKind::Caret; break;
          case '&':
            kind = match('&') ? TokenKind::AmpAmp : TokenKind::Amp;
            break;
          case '|':
            kind = match('|') ? TokenKind::PipePipe : TokenKind::Pipe;
            break;
          case '!':
            kind = match('=') ? TokenKind::Ne : TokenKind::Bang;
            break;
          case '=':
            kind = match('=') ? TokenKind::Eq : TokenKind::Assign;
            break;
          case '<':
            kind = match('=') ? TokenKind::Le
                 : match('<') ? TokenKind::Shl
                              : TokenKind::Lt;
            break;
          case '>':
            kind = match('=') ? TokenKind::Ge
                 : match('>') ? TokenKind::Shr
                              : TokenKind::Gt;
            break;
          default:
            error(std::string("unexpected character '") + c + "'");
        }
        tokens.push_back(make(kind, atLine, atCol));
    }
    tokens.push_back(make(TokenKind::EndOfFile, line, col));
    return tokens;
}

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    return Lexer(source).run();
}

} // namespace pe::minic
