/**
 * @file
 * MiniC code generator.
 *
 * Besides ordinary code generation, this is the compiler half of
 * PathExpander (paper Section 4.4):
 *
 *  - at both edges of every if/while/for branch whose condition has a
 *    fixable shape (scalar variable vs. constant, pointer null test,
 *    bare variable), it inserts predicated variable-fixing
 *    instructions (Pfix/Pfixst) that force the condition variable to
 *    the boundary value satisfying that edge — they execute only at
 *    the entrance of an NT-Path (Table 1);
 *  - it allocates a blank data structure at program start; pointer
 *    fixes point null pointers at it;
 *  - every array, string literal and heap block gets guard words and
 *    a Regobj registration so the dynamic checkers know object
 *    bounds;
 *  - every array/pointer access is preceded by a Chkb hook.
 */

#ifndef PE_MINIC_CODEGEN_HH
#define PE_MINIC_CODEGEN_HH

#include <string>

#include "src/isa/program.hh"
#include "src/minic/ast.hh"

namespace pe::minic
{

/** Generate a PE-RISC program image from @p unit. */
isa::Program generate(const TranslationUnit &unit,
                      const std::string &name);

} // namespace pe::minic

#endif // PE_MINIC_CODEGEN_HH
