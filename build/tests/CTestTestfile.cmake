# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/workload_pt2_test[1]_include.cmake")
include("/root/repo/build/tests/workload_suite_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/btb_test[1]_include.cmake")
include("/root/repo/build/tests/detect_test[1]_include.cmake")
include("/root/repo/build/tests/minic_test[1]_include.cmake")
include("/root/repo/build/tests/minic_fixing_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/cmp_test[1]_include.cmake")
include("/root/repo/build/tests/swpe_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/hot_edge_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/reproduction_test[1]_include.cmake")
include("/root/repo/build/tests/workload_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/nospawn_test[1]_include.cmake")
include("/root/repo/build/tests/objfile_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/engine_property_test[1]_include.cmake")
