# Empty compiler generated dependencies file for hot_edge_test.
# This may be replaced when dependencies are built.
