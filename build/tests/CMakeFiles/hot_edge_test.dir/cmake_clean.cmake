file(REMOVE_RECURSE
  "CMakeFiles/hot_edge_test.dir/hot_edge_test.cpp.o"
  "CMakeFiles/hot_edge_test.dir/hot_edge_test.cpp.o.d"
  "hot_edge_test"
  "hot_edge_test.pdb"
  "hot_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
