file(REMOVE_RECURSE
  "CMakeFiles/swpe_test.dir/swpe_test.cpp.o"
  "CMakeFiles/swpe_test.dir/swpe_test.cpp.o.d"
  "swpe_test"
  "swpe_test.pdb"
  "swpe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swpe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
