# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for swpe_test.
