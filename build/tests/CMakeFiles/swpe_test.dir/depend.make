# Empty dependencies file for swpe_test.
# This may be replaced when dependencies are built.
