# Empty compiler generated dependencies file for workload_pt2_test.
# This may be replaced when dependencies are built.
