file(REMOVE_RECURSE
  "CMakeFiles/workload_pt2_test.dir/workload_pt2_test.cpp.o"
  "CMakeFiles/workload_pt2_test.dir/workload_pt2_test.cpp.o.d"
  "workload_pt2_test"
  "workload_pt2_test.pdb"
  "workload_pt2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_pt2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
