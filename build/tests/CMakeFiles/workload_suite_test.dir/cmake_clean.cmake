file(REMOVE_RECURSE
  "CMakeFiles/workload_suite_test.dir/workload_suite_test.cpp.o"
  "CMakeFiles/workload_suite_test.dir/workload_suite_test.cpp.o.d"
  "workload_suite_test"
  "workload_suite_test.pdb"
  "workload_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
