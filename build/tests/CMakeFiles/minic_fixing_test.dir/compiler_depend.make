# Empty compiler generated dependencies file for minic_fixing_test.
# This may be replaced when dependencies are built.
