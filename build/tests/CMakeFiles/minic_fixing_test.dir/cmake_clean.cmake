file(REMOVE_RECURSE
  "CMakeFiles/minic_fixing_test.dir/minic_fixing_test.cpp.o"
  "CMakeFiles/minic_fixing_test.dir/minic_fixing_test.cpp.o.d"
  "minic_fixing_test"
  "minic_fixing_test.pdb"
  "minic_fixing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minic_fixing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
