file(REMOVE_RECURSE
  "CMakeFiles/workload_behavior_test.dir/workload_behavior_test.cpp.o"
  "CMakeFiles/workload_behavior_test.dir/workload_behavior_test.cpp.o.d"
  "workload_behavior_test"
  "workload_behavior_test.pdb"
  "workload_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
