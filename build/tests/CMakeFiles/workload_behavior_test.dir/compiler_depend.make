# Empty compiler generated dependencies file for workload_behavior_test.
# This may be replaced when dependencies are built.
