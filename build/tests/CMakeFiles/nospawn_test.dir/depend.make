# Empty dependencies file for nospawn_test.
# This may be replaced when dependencies are built.
