file(REMOVE_RECURSE
  "CMakeFiles/nospawn_test.dir/nospawn_test.cpp.o"
  "CMakeFiles/nospawn_test.dir/nospawn_test.cpp.o.d"
  "nospawn_test"
  "nospawn_test.pdb"
  "nospawn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nospawn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
