# Empty compiler generated dependencies file for bench_fig_cumulative.
# This may be replaced when dependencies are built.
