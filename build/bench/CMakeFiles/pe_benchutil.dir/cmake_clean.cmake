file(REMOVE_RECURSE
  "CMakeFiles/pe_benchutil.dir/bench_util.cc.o"
  "CMakeFiles/pe_benchutil.dir/bench_util.cc.o.d"
  "libpe_benchutil.a"
  "libpe_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
