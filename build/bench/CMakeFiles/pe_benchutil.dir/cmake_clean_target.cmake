file(REMOVE_RECURSE
  "libpe_benchutil.a"
)
