# Empty compiler generated dependencies file for pe_benchutil.
# This may be replaced when dependencies are built.
