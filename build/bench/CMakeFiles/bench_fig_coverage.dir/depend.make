# Empty dependencies file for bench_fig_coverage.
# This may be replaced when dependencies are built.
