# Empty dependencies file for bench_table5_fixing.
# This may be replaced when dependencies are built.
