file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fixing.dir/bench_table5_fixing.cpp.o"
  "CMakeFiles/bench_table5_fixing.dir/bench_table5_fixing.cpp.o.d"
  "bench_table5_fixing"
  "bench_table5_fixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
