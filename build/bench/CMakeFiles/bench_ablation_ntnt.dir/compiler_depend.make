# Empty compiler generated dependencies file for bench_ablation_ntnt.
# This may be replaced when dependencies are built.
