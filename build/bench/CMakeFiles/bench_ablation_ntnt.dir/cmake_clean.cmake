file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ntnt.dir/bench_ablation_ntnt.cpp.o"
  "CMakeFiles/bench_ablation_ntnt.dir/bench_ablation_ntnt.cpp.o.d"
  "bench_ablation_ntnt"
  "bench_ablation_ntnt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ntnt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
