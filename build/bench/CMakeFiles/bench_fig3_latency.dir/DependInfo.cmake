
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_latency.cpp" "bench/CMakeFiles/bench_fig3_latency.dir/bench_fig3_latency.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_latency.dir/bench_fig3_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pe_benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/pe_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/swpe/CMakeFiles/pe_swpe.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/pe_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/pe_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pe_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/pe_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pe_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/pe_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pe_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pe_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
