file(REMOVE_RECURSE
  "CMakeFiles/pe_swpe.dir/software_pe.cc.o"
  "CMakeFiles/pe_swpe.dir/software_pe.cc.o.d"
  "libpe_swpe.a"
  "libpe_swpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_swpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
