# Empty dependencies file for pe_swpe.
# This may be replaced when dependencies are built.
