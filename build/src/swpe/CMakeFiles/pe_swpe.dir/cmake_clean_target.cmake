file(REMOVE_RECURSE
  "libpe_swpe.a"
)
