file(REMOVE_RECURSE
  "CMakeFiles/pe_detect.dir/detector.cc.o"
  "CMakeFiles/pe_detect.dir/detector.cc.o.d"
  "CMakeFiles/pe_detect.dir/registry.cc.o"
  "CMakeFiles/pe_detect.dir/registry.cc.o.d"
  "CMakeFiles/pe_detect.dir/report.cc.o"
  "CMakeFiles/pe_detect.dir/report.cc.o.d"
  "libpe_detect.a"
  "libpe_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
