file(REMOVE_RECURSE
  "libpe_detect.a"
)
