# Empty dependencies file for pe_detect.
# This may be replaced when dependencies are built.
