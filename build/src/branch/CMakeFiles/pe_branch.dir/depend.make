# Empty dependencies file for pe_branch.
# This may be replaced when dependencies are built.
