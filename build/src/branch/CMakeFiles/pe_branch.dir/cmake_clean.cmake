file(REMOVE_RECURSE
  "CMakeFiles/pe_branch.dir/btb.cc.o"
  "CMakeFiles/pe_branch.dir/btb.cc.o.d"
  "libpe_branch.a"
  "libpe_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
