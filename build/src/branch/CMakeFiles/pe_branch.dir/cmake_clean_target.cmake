file(REMOVE_RECURSE
  "libpe_branch.a"
)
