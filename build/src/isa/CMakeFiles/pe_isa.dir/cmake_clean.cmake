file(REMOVE_RECURSE
  "CMakeFiles/pe_isa.dir/assembler.cc.o"
  "CMakeFiles/pe_isa.dir/assembler.cc.o.d"
  "CMakeFiles/pe_isa.dir/instruction.cc.o"
  "CMakeFiles/pe_isa.dir/instruction.cc.o.d"
  "CMakeFiles/pe_isa.dir/objfile.cc.o"
  "CMakeFiles/pe_isa.dir/objfile.cc.o.d"
  "CMakeFiles/pe_isa.dir/opcode.cc.o"
  "CMakeFiles/pe_isa.dir/opcode.cc.o.d"
  "CMakeFiles/pe_isa.dir/program.cc.o"
  "CMakeFiles/pe_isa.dir/program.cc.o.d"
  "libpe_isa.a"
  "libpe_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
