# Empty compiler generated dependencies file for pe_isa.
# This may be replaced when dependencies are built.
