file(REMOVE_RECURSE
  "libpe_isa.a"
)
