# Empty compiler generated dependencies file for pe_coverage.
# This may be replaced when dependencies are built.
