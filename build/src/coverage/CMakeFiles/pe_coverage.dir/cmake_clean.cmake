file(REMOVE_RECURSE
  "CMakeFiles/pe_coverage.dir/coverage.cc.o"
  "CMakeFiles/pe_coverage.dir/coverage.cc.o.d"
  "libpe_coverage.a"
  "libpe_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
