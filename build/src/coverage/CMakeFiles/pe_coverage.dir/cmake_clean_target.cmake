file(REMOVE_RECURSE
  "libpe_coverage.a"
)
