# Empty compiler generated dependencies file for pe_mem.
# This may be replaced when dependencies are built.
