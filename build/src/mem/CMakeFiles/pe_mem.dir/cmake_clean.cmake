file(REMOVE_RECURSE
  "CMakeFiles/pe_mem.dir/cache.cc.o"
  "CMakeFiles/pe_mem.dir/cache.cc.o.d"
  "CMakeFiles/pe_mem.dir/hierarchy.cc.o"
  "CMakeFiles/pe_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/pe_mem.dir/main_memory.cc.o"
  "CMakeFiles/pe_mem.dir/main_memory.cc.o.d"
  "CMakeFiles/pe_mem.dir/versioned_buffer.cc.o"
  "CMakeFiles/pe_mem.dir/versioned_buffer.cc.o.d"
  "libpe_mem.a"
  "libpe_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
