file(REMOVE_RECURSE
  "libpe_mem.a"
)
