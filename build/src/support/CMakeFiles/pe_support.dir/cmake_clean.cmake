file(REMOVE_RECURSE
  "CMakeFiles/pe_support.dir/rng.cc.o"
  "CMakeFiles/pe_support.dir/rng.cc.o.d"
  "CMakeFiles/pe_support.dir/stats.cc.o"
  "CMakeFiles/pe_support.dir/stats.cc.o.d"
  "CMakeFiles/pe_support.dir/status.cc.o"
  "CMakeFiles/pe_support.dir/status.cc.o.d"
  "CMakeFiles/pe_support.dir/strutil.cc.o"
  "CMakeFiles/pe_support.dir/strutil.cc.o.d"
  "CMakeFiles/pe_support.dir/table.cc.o"
  "CMakeFiles/pe_support.dir/table.cc.o.d"
  "libpe_support.a"
  "libpe_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
