file(REMOVE_RECURSE
  "libpe_workloads.a"
)
