# Empty compiler generated dependencies file for pe_workloads.
# This may be replaced when dependencies are built.
