file(REMOVE_RECURSE
  "CMakeFiles/pe_workloads.dir/analysis.cc.o"
  "CMakeFiles/pe_workloads.dir/analysis.cc.o.d"
  "CMakeFiles/pe_workloads.dir/bc.cc.o"
  "CMakeFiles/pe_workloads.dir/bc.cc.o.d"
  "CMakeFiles/pe_workloads.dir/go.cc.o"
  "CMakeFiles/pe_workloads.dir/go.cc.o.d"
  "CMakeFiles/pe_workloads.dir/gzip.cc.o"
  "CMakeFiles/pe_workloads.dir/gzip.cc.o.d"
  "CMakeFiles/pe_workloads.dir/man.cc.o"
  "CMakeFiles/pe_workloads.dir/man.cc.o.d"
  "CMakeFiles/pe_workloads.dir/parser.cc.o"
  "CMakeFiles/pe_workloads.dir/parser.cc.o.d"
  "CMakeFiles/pe_workloads.dir/print_tokens.cc.o"
  "CMakeFiles/pe_workloads.dir/print_tokens.cc.o.d"
  "CMakeFiles/pe_workloads.dir/print_tokens2.cc.o"
  "CMakeFiles/pe_workloads.dir/print_tokens2.cc.o.d"
  "CMakeFiles/pe_workloads.dir/registry.cc.o"
  "CMakeFiles/pe_workloads.dir/registry.cc.o.d"
  "CMakeFiles/pe_workloads.dir/schedule.cc.o"
  "CMakeFiles/pe_workloads.dir/schedule.cc.o.d"
  "CMakeFiles/pe_workloads.dir/schedule2.cc.o"
  "CMakeFiles/pe_workloads.dir/schedule2.cc.o.d"
  "CMakeFiles/pe_workloads.dir/vpr.cc.o"
  "CMakeFiles/pe_workloads.dir/vpr.cc.o.d"
  "libpe_workloads.a"
  "libpe_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
