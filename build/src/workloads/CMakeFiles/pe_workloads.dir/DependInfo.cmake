
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/analysis.cc" "src/workloads/CMakeFiles/pe_workloads.dir/analysis.cc.o" "gcc" "src/workloads/CMakeFiles/pe_workloads.dir/analysis.cc.o.d"
  "/root/repo/src/workloads/bc.cc" "src/workloads/CMakeFiles/pe_workloads.dir/bc.cc.o" "gcc" "src/workloads/CMakeFiles/pe_workloads.dir/bc.cc.o.d"
  "/root/repo/src/workloads/go.cc" "src/workloads/CMakeFiles/pe_workloads.dir/go.cc.o" "gcc" "src/workloads/CMakeFiles/pe_workloads.dir/go.cc.o.d"
  "/root/repo/src/workloads/gzip.cc" "src/workloads/CMakeFiles/pe_workloads.dir/gzip.cc.o" "gcc" "src/workloads/CMakeFiles/pe_workloads.dir/gzip.cc.o.d"
  "/root/repo/src/workloads/man.cc" "src/workloads/CMakeFiles/pe_workloads.dir/man.cc.o" "gcc" "src/workloads/CMakeFiles/pe_workloads.dir/man.cc.o.d"
  "/root/repo/src/workloads/parser.cc" "src/workloads/CMakeFiles/pe_workloads.dir/parser.cc.o" "gcc" "src/workloads/CMakeFiles/pe_workloads.dir/parser.cc.o.d"
  "/root/repo/src/workloads/print_tokens.cc" "src/workloads/CMakeFiles/pe_workloads.dir/print_tokens.cc.o" "gcc" "src/workloads/CMakeFiles/pe_workloads.dir/print_tokens.cc.o.d"
  "/root/repo/src/workloads/print_tokens2.cc" "src/workloads/CMakeFiles/pe_workloads.dir/print_tokens2.cc.o" "gcc" "src/workloads/CMakeFiles/pe_workloads.dir/print_tokens2.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/pe_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/pe_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/schedule.cc" "src/workloads/CMakeFiles/pe_workloads.dir/schedule.cc.o" "gcc" "src/workloads/CMakeFiles/pe_workloads.dir/schedule.cc.o.d"
  "/root/repo/src/workloads/schedule2.cc" "src/workloads/CMakeFiles/pe_workloads.dir/schedule2.cc.o" "gcc" "src/workloads/CMakeFiles/pe_workloads.dir/schedule2.cc.o.d"
  "/root/repo/src/workloads/vpr.cc" "src/workloads/CMakeFiles/pe_workloads.dir/vpr.cc.o" "gcc" "src/workloads/CMakeFiles/pe_workloads.dir/vpr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pe_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pe_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/pe_detect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
