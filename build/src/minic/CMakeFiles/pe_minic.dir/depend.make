# Empty dependencies file for pe_minic.
# This may be replaced when dependencies are built.
