file(REMOVE_RECURSE
  "CMakeFiles/pe_minic.dir/codegen.cc.o"
  "CMakeFiles/pe_minic.dir/codegen.cc.o.d"
  "CMakeFiles/pe_minic.dir/compiler.cc.o"
  "CMakeFiles/pe_minic.dir/compiler.cc.o.d"
  "CMakeFiles/pe_minic.dir/lexer.cc.o"
  "CMakeFiles/pe_minic.dir/lexer.cc.o.d"
  "CMakeFiles/pe_minic.dir/parser.cc.o"
  "CMakeFiles/pe_minic.dir/parser.cc.o.d"
  "libpe_minic.a"
  "libpe_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
