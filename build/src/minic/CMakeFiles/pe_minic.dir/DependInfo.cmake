
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minic/codegen.cc" "src/minic/CMakeFiles/pe_minic.dir/codegen.cc.o" "gcc" "src/minic/CMakeFiles/pe_minic.dir/codegen.cc.o.d"
  "/root/repo/src/minic/compiler.cc" "src/minic/CMakeFiles/pe_minic.dir/compiler.cc.o" "gcc" "src/minic/CMakeFiles/pe_minic.dir/compiler.cc.o.d"
  "/root/repo/src/minic/lexer.cc" "src/minic/CMakeFiles/pe_minic.dir/lexer.cc.o" "gcc" "src/minic/CMakeFiles/pe_minic.dir/lexer.cc.o.d"
  "/root/repo/src/minic/parser.cc" "src/minic/CMakeFiles/pe_minic.dir/parser.cc.o" "gcc" "src/minic/CMakeFiles/pe_minic.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pe_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pe_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
