file(REMOVE_RECURSE
  "libpe_minic.a"
)
