# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("mem")
subdirs("branch")
subdirs("checkpoint")
subdirs("detect")
subdirs("sim")
subdirs("minic")
subdirs("coverage")
subdirs("core")
subdirs("swpe")
subdirs("workloads")
