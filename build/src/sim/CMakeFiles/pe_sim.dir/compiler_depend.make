# Empty compiler generated dependencies file for pe_sim.
# This may be replaced when dependencies are built.
