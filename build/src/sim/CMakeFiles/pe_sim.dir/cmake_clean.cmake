file(REMOVE_RECURSE
  "CMakeFiles/pe_sim.dir/interpreter.cc.o"
  "CMakeFiles/pe_sim.dir/interpreter.cc.o.d"
  "CMakeFiles/pe_sim.dir/timing.cc.o"
  "CMakeFiles/pe_sim.dir/timing.cc.o.d"
  "libpe_sim.a"
  "libpe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
