file(REMOVE_RECURSE
  "CMakeFiles/pe_core.dir/cmp.cc.o"
  "CMakeFiles/pe_core.dir/cmp.cc.o.d"
  "CMakeFiles/pe_core.dir/config.cc.o"
  "CMakeFiles/pe_core.dir/config.cc.o.d"
  "CMakeFiles/pe_core.dir/engine.cc.o"
  "CMakeFiles/pe_core.dir/engine.cc.o.d"
  "CMakeFiles/pe_core.dir/result.cc.o"
  "CMakeFiles/pe_core.dir/result.cc.o.d"
  "libpe_core.a"
  "libpe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
