
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cmp.cc" "src/core/CMakeFiles/pe_core.dir/cmp.cc.o" "gcc" "src/core/CMakeFiles/pe_core.dir/cmp.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/pe_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/pe_core.dir/config.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/pe_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/pe_core.dir/engine.cc.o.d"
  "/root/repo/src/core/result.cc" "src/core/CMakeFiles/pe_core.dir/result.cc.o" "gcc" "src/core/CMakeFiles/pe_core.dir/result.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pe_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pe_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pe_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/pe_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/pe_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/pe_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pe_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/pe_coverage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
