# Empty compiler generated dependencies file for pe_checkpoint.
# This may be replaced when dependencies are built.
