file(REMOVE_RECURSE
  "libpe_checkpoint.a"
)
