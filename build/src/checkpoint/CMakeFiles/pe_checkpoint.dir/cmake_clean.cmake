file(REMOVE_RECURSE
  "CMakeFiles/pe_checkpoint.dir/checkpoint.cc.o"
  "CMakeFiles/pe_checkpoint.dir/checkpoint.cc.o.d"
  "libpe_checkpoint.a"
  "libpe_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
