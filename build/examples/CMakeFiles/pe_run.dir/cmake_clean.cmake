file(REMOVE_RECURSE
  "CMakeFiles/pe_run.dir/pe_run.cpp.o"
  "CMakeFiles/pe_run.dir/pe_run.cpp.o.d"
  "pe_run"
  "pe_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
