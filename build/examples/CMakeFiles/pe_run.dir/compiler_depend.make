# Empty compiler generated dependencies file for pe_run.
# This may be replaced when dependencies are built.
